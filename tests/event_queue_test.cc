#include "src/sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace cmpsim {
namespace {

TEST(EventQueueTest, StartsEmptyAtCycleZero)
{
    EventQueue eq;
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_EQ(eq.nextEventCycle(), kCycleNever);
}

TEST(EventQueueTest, RunsEventsInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.drain();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueueTest, SameCycleEventsRunInScheduleOrder)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        eq.schedule(7, [&order, i] { order.push_back(i); });
    eq.drain();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, EventsMayScheduleMoreEvents)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1, [&] {
        ++fired;
        eq.schedule(2, [&] {
            ++fired;
            eq.schedule(5, [&] { ++fired; });
        });
    });
    eq.drain();
    EXPECT_EQ(fired, 3);
    EXPECT_EQ(eq.now(), 5u);
}

TEST(EventQueueTest, AdvanceToRunsOnlyDueEvents)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(5, [&] { ++fired; });
    eq.schedule(15, [&] { ++fired; });
    eq.advanceTo(10);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.now(), 10u);
    EXPECT_EQ(eq.nextEventCycle(), 15u);
    eq.advanceTo(15);
    EXPECT_EQ(fired, 2);
}

TEST(EventQueueTest, NowTracksEventBeingRun)
{
    EventQueue eq;
    Cycle seen = 0;
    eq.schedule(42, [&] { seen = eq.now(); });
    eq.drain();
    EXPECT_EQ(seen, 42u);
}

TEST(EventQueueTest, DrainWithLimitLeavesFutureEvents)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1, [&] { ++fired; });
    eq.schedule(100, [&] { ++fired; });
    EXPECT_EQ(eq.drain(50), 1u);
    EXPECT_EQ(fired, 1);
    EXPECT_FALSE(eq.empty());
}

TEST(EventQueueTest, ZeroDelayEventAtCurrentCycleRuns)
{
    EventQueue eq;
    eq.advanceTo(10);
    bool ran = false;
    eq.schedule(10, [&] { ran = true; });
    eq.advanceTo(10);
    EXPECT_TRUE(ran);
}

TEST(EventQueueTest, SameCycleContinuationsRunAfterOlderPeers)
{
    // Events already pending at cycle T must run before continuations
    // scheduled back at T while T executes — strict (when, seq) order.
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(5, [&] {
        order.push_back(0);
        eq.schedule(5, [&] { order.push_back(2); });
        eq.schedule(5, [&] { order.push_back(3); });
    });
    eq.schedule(5, [&] { order.push_back(1); });
    eq.schedule(6, [&] { order.push_back(4); });
    eq.drain();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, NestedSameCycleCascadeRunsToCompletion)
{
    EventQueue eq;
    int depth = 0;
    std::function<void()> chain = [&] {
        if (++depth < 10)
            eq.schedule(eq.now(), chain);
    };
    eq.schedule(3, chain);
    EXPECT_EQ(eq.drain(), 10u);
    EXPECT_EQ(depth, 10);
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueueTest, SizeAndNextCycleSeeSameCyclePendings)
{
    EventQueue eq;
    eq.advanceTo(4);
    eq.schedule(4, [] {});
    eq.schedule(9, [] {});
    EXPECT_EQ(eq.size(), 2u);
    EXPECT_FALSE(eq.empty());
    EXPECT_EQ(eq.nextEventCycle(), 4u);
    eq.advanceTo(4);
    EXPECT_EQ(eq.size(), 1u);
    EXPECT_EQ(eq.nextEventCycle(), 9u);
}

TEST(EventQueueTest, ReservePreservesOrderAndContents)
{
    EventQueue eq;
    eq.reserve(64);
    std::vector<int> order;
    for (int i = 0; i < 32; ++i)
        eq.schedule(static_cast<Cycle>(100 - i), [&order, i] {
            order.push_back(i);
        });
    eq.drain();
    ASSERT_EQ(order.size(), 32u);
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], 31 - i);
}

TEST(EventQueueTest, SharedSequenceSourceMergesAcrossQueues)
{
    // Two queues drawing from one counter: a merged drain by exact
    // (when, seq) must replay the global schedule order, including
    // same-cycle events split across the queues.
    std::uint64_t seq = 0;
    EventQueue a;
    EventQueue b;
    a.setSequenceSource(&seq);
    b.setSequenceSource(&seq);

    std::vector<int> order;
    a.schedule(10, [&] { order.push_back(0); });
    b.schedule(10, [&] { order.push_back(1); });
    a.schedule(5, [&] { order.push_back(2); });
    b.schedule(10, [&] { order.push_back(3); });
    a.schedule(10, [&] { order.push_back(4); });

    while (true) {
        EventQueue::EventKey ka, kb;
        const bool ha = a.nextKey(ka);
        const bool hb = b.nextKey(kb);
        if (!ha && !hb)
            break;
        EventQueue &next =
            !hb || (ha && ka.before(kb)) ? a : b;
        next.runOneEarliest();
    }
    // Global order: the cycle-5 event first, then the cycle-10 events
    // in schedule order regardless of queue.
    EXPECT_EQ(order, (std::vector<int>{2, 0, 1, 3, 4}));
}

TEST(EventQueueTest, NextKeySeesSameCycleCrossQueueScheduling)
{
    // While queue A executes an event at cycle T, it may schedule into
    // queue B *at* T (an L1 fill completing a waiter). B's nextKey must
    // rank that younger event after A's remaining FIFO entries — the
    // exact (when, seq) comparison, not just cycle numbers.
    std::uint64_t seq = 0;
    EventQueue a;
    EventQueue b;
    a.setSequenceSource(&seq);
    b.setSequenceSource(&seq);

    std::vector<int> order;
    a.schedule(7, [&] {
        order.push_back(0);
        a.schedule(7, [&] { order.push_back(1); }); // FIFO, seq younger
        b.schedule(7, [&] { order.push_back(2); }); // heap, youngest
    });
    while (true) {
        EventQueue::EventKey ka, kb;
        const bool ha = a.nextKey(ka);
        const bool hb = b.nextKey(kb);
        if (!ha && !hb)
            break;
        (!hb || (ha && ka.before(kb)) ? a : b).runOneEarliest();
    }
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(EventQueueTest, SyncNowAdvancesWithoutRunning)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(20, [&] { ++fired; });
    eq.syncNow(10);
    EXPECT_EQ(eq.now(), 10u);
    EXPECT_EQ(fired, 0);
    // An event exactly at the barrier cycle is still pending — the
    // quantum boundary must run it before syncing past it.
    EventQueue::EventKey k;
    ASSERT_TRUE(eq.nextKey(k));
    EXPECT_EQ(k.when, 20u);
    eq.runOneEarliest();
    EXPECT_EQ(fired, 1);
    eq.syncNow(20);
    EXPECT_EQ(eq.now(), 20u);
}

TEST(EventQueueTest, RunOneEarliestAdvancesNowPerEvent)
{
    EventQueue eq;
    std::vector<Cycle> seen;
    eq.schedule(3, [&] { seen.push_back(eq.now()); });
    eq.schedule(8, [&] { seen.push_back(eq.now()); });
    eq.runOneEarliest();
    eq.runOneEarliest();
    EXPECT_EQ(seen, (std::vector<Cycle>{3, 8}));
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueueTest, InterleavedCyclesKeepScheduleOrder)
{
    // Stress the intrusive heap: many events at duplicated cycles
    // must still pop in exact (when, seq) order.
    EventQueue eq;
    std::vector<std::pair<Cycle, int>> order;
    int n = 0;
    for (Cycle when : {30u, 10u, 20u, 10u, 30u, 20u, 10u, 40u, 10u}) {
        const int id = n++;
        eq.schedule(when, [&, when, id] { order.emplace_back(when, id); });
    }
    eq.drain();
    const std::vector<std::pair<Cycle, int>> expect = {
        {10, 1}, {10, 3}, {10, 6}, {10, 8}, {20, 2},
        {20, 5}, {30, 0}, {30, 4}, {40, 7},
    };
    EXPECT_EQ(order, expect);
}

} // namespace
} // namespace cmpsim
