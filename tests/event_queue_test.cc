#include "src/sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace cmpsim {
namespace {

TEST(EventQueueTest, StartsEmptyAtCycleZero)
{
    EventQueue eq;
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_EQ(eq.nextEventCycle(), kCycleNever);
}

TEST(EventQueueTest, RunsEventsInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.drain();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueueTest, SameCycleEventsRunInScheduleOrder)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        eq.schedule(7, [&order, i] { order.push_back(i); });
    eq.drain();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, EventsMayScheduleMoreEvents)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1, [&] {
        ++fired;
        eq.schedule(2, [&] {
            ++fired;
            eq.schedule(5, [&] { ++fired; });
        });
    });
    eq.drain();
    EXPECT_EQ(fired, 3);
    EXPECT_EQ(eq.now(), 5u);
}

TEST(EventQueueTest, AdvanceToRunsOnlyDueEvents)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(5, [&] { ++fired; });
    eq.schedule(15, [&] { ++fired; });
    eq.advanceTo(10);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.now(), 10u);
    EXPECT_EQ(eq.nextEventCycle(), 15u);
    eq.advanceTo(15);
    EXPECT_EQ(fired, 2);
}

TEST(EventQueueTest, NowTracksEventBeingRun)
{
    EventQueue eq;
    Cycle seen = 0;
    eq.schedule(42, [&] { seen = eq.now(); });
    eq.drain();
    EXPECT_EQ(seen, 42u);
}

TEST(EventQueueTest, DrainWithLimitLeavesFutureEvents)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1, [&] { ++fired; });
    eq.schedule(100, [&] { ++fired; });
    EXPECT_EQ(eq.drain(50), 1u);
    EXPECT_EQ(fired, 1);
    EXPECT_FALSE(eq.empty());
}

TEST(EventQueueTest, ZeroDelayEventAtCurrentCycleRuns)
{
    EventQueue eq;
    eq.advanceTo(10);
    bool ran = false;
    eq.schedule(10, [&] { ran = true; });
    eq.advanceTo(10);
    EXPECT_TRUE(ran);
}

} // namespace
} // namespace cmpsim
