/**
 * @file
 * Environment parsing for the experiment layer, in particular that an
 * explicit 0 is a legitimate value (CMPSIM_JOBS=0 = auto worker
 * count, CMPSIM_WARMUP=0 = no warmup) and only genuine parse errors
 * are fatal.
 */

#include "src/core_api/experiment.h"

#include <gtest/gtest.h>

#include "src/common/sim_error.h"

#include <cstdlib>

#include "src/core_api/parallel_runner.h"

namespace cmpsim {
namespace {

class EnvUint64OrTest : public ::testing::Test
{
  protected:
    static constexpr const char *kVar = "CMPSIM_TEST_ENV_VALUE";

    void SetUp() override { ::unsetenv(kVar); }
    void TearDown() override { ::unsetenv(kVar); }
};

TEST_F(EnvUint64OrTest, UnsetReturnsFallback)
{
    EXPECT_EQ(envUint64Or(kVar, 7), 7u);
}

TEST_F(EnvUint64OrTest, EmptyReturnsFallback)
{
    ::setenv(kVar, "", 1);
    EXPECT_EQ(envUint64Or(kVar, 7), 7u);
}

TEST_F(EnvUint64OrTest, ParsesValue)
{
    ::setenv(kVar, "400000", 1);
    EXPECT_EQ(envUint64Or(kVar, 7), 400000u);
}

TEST_F(EnvUint64OrTest, ExplicitZeroIsAValueNotAnError)
{
    ::setenv(kVar, "0", 1);
    EXPECT_EQ(envUint64Or(kVar, 7), 0u);
}

TEST_F(EnvUint64OrTest, NonNumericIsFatal)
{
    ::setenv(kVar, "fast", 1);
    EXPECT_THROW(envUint64Or(kVar, 7), ConfigError);
}

TEST_F(EnvUint64OrTest, TrailingGarbageIsFatal)
{
    ::setenv(kVar, "8threads", 1);
    EXPECT_THROW(envUint64Or(kVar, 7), ConfigError);
}

TEST(DefaultJobsTest, ZeroMeansHardwareAuto)
{
    ::setenv("CMPSIM_JOBS", "0", 1);
    EXPECT_GE(defaultJobs(), 1u);
    ::setenv("CMPSIM_JOBS", "3", 1);
    EXPECT_EQ(defaultJobs(), 3u);
    ::unsetenv("CMPSIM_JOBS");
    EXPECT_GE(defaultJobs(), 1u);
}

} // namespace
} // namespace cmpsim
