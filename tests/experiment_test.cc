/**
 * @file
 * Environment parsing for the experiment layer, in particular that an
 * explicit 0 is a legitimate value (CMPSIM_JOBS=0 = auto worker
 * count, CMPSIM_WARMUP=0 = no warmup) and only genuine parse errors
 * are fatal.
 */

#include "src/core_api/experiment.h"

#include <gtest/gtest.h>

#include "src/common/sim_error.h"

#include <cstdlib>

#include "src/core_api/parallel_runner.h"

namespace cmpsim {
namespace {

class EnvUint64OrTest : public ::testing::Test
{
  protected:
    static constexpr const char *kVar = "CMPSIM_TEST_ENV_VALUE";

    void SetUp() override { ::unsetenv(kVar); }
    void TearDown() override { ::unsetenv(kVar); }
};

TEST_F(EnvUint64OrTest, UnsetReturnsFallback)
{
    EXPECT_EQ(envUint64Or(kVar, 7), 7u);
}

TEST_F(EnvUint64OrTest, EmptyReturnsFallback)
{
    ::setenv(kVar, "", 1);
    EXPECT_EQ(envUint64Or(kVar, 7), 7u);
}

TEST_F(EnvUint64OrTest, ParsesValue)
{
    ::setenv(kVar, "400000", 1);
    EXPECT_EQ(envUint64Or(kVar, 7), 400000u);
}

TEST_F(EnvUint64OrTest, ExplicitZeroIsAValueNotAnError)
{
    ::setenv(kVar, "0", 1);
    EXPECT_EQ(envUint64Or(kVar, 7), 0u);
}

TEST_F(EnvUint64OrTest, NonNumericIsFatal)
{
    ::setenv(kVar, "fast", 1);
    EXPECT_THROW(envUint64Or(kVar, 7), ConfigError);
}

TEST_F(EnvUint64OrTest, TrailingGarbageIsFatal)
{
    ::setenv(kVar, "8threads", 1);
    EXPECT_THROW(envUint64Or(kVar, 7), ConfigError);
}

TEST(DefaultJobsTest, ZeroMeansHardwareAuto)
{
    ::setenv("CMPSIM_JOBS", "0", 1);
    EXPECT_GE(defaultJobs(), 1u);
    ::setenv("CMPSIM_JOBS", "3", 1);
    EXPECT_EQ(defaultJobs(), 3u);
    ::unsetenv("CMPSIM_JOBS");
    EXPECT_GE(defaultJobs(), 1u);
}

TEST(DefaultRunLengthsTest, ExplicitZeroWarmupRunsEndToEnd)
{
    // CMPSIM_WARMUP=0 must mean "no warmup", not "fall back to the
    // 400k default" — and a zero-warmup experiment must complete and
    // publish sane metrics, cold caches and all.
    ::setenv("CMPSIM_WARMUP", "0", 1);
    ::setenv("CMPSIM_MEASURE", "2000", 1);
    const RunLengths lengths = defaultRunLengths();
    ::unsetenv("CMPSIM_WARMUP");
    ::unsetenv("CMPSIM_MEASURE");
    EXPECT_EQ(lengths.warmup_per_core, 0u);
    EXPECT_EQ(lengths.measure_per_core, 2000u);

    SystemConfig cfg = makeConfig(/*cores=*/2, /*scale=*/8,
                                  /*cache_compression=*/true,
                                  /*link_compression=*/true,
                                  /*prefetching=*/true,
                                  /*adaptive=*/false);
    const MetricSummary cold = runSeeds(cfg, "zeus", lengths, 1);
    EXPECT_GT(cold.runs.front().instructions, 0.0);
    EXPECT_GT(cold.runs.front().ipc, 0.0);

    // A warmed run of the same point must differ: if the two agree,
    // the zero was silently replaced by a default somewhere below.
    RunLengths warmed = lengths;
    warmed.warmup_per_core = 5000;
    const MetricSummary warm = runSeeds(cfg, "zeus", warmed, 1);
    EXPECT_NE(cold.runs.front().cycles, warm.runs.front().cycles);
}

} // namespace
} // namespace cmpsim
