#include "src/cache/l2_cache.h"

#include <gtest/gtest.h>

#include "src/compression/fpc.h"

namespace cmpsim {
namespace {

/** Small, single-bank L2 over a real memory model. */
class L2CacheTest : public ::testing::Test
{
  protected:
    EventQueue eq;
    FpcCompressor fpc;
    ValueStore values{fpc};
    MemoryParams mem_params;
    MainMemory *mem = nullptr;
    L2Cache *l2 = nullptr;

    void
    build(bool compressed, bool link_compression = false,
          unsigned extra_victim_tags = 0)
    {
        mem_params.dram_latency = 400;
        mem_params.link_bytes_per_cycle = 4.0;
        mem_params.link_compression = link_compression;
        mem = new MainMemory(eq, values, mem_params);

        L2Params p;
        p.sets = 4;
        p.banks = 1;
        p.tags_per_set = 8 + extra_victim_tags;
        p.segment_budget = compressed ? 32 : 64;
        p.compressed = compressed;
        p.cores = 2;
        l2 = new L2Cache(eq, values, *mem, p);
    }

    void
    TearDown() override
    {
        delete l2;
        delete mem;
    }

    /** Address of line index i mapping to set (i % 4). */
    Addr
    la(std::uint64_t i)
    {
        return i << kLineShift;
    }

    /** Make the line at addr incompressible. */
    void
    makeRaw(Addr addr)
    {
        LineData d{};
        for (unsigned w = 0; w < kWordsPerLine; ++w)
            setLineWord(d, w, 0x9e3779b9u * (w + 7) ^ 0xdeadbeefu);
        values.setLine(addr, d);
    }

    /** Issue a request and run to completion; returns response cycle. */
    Cycle
    run(unsigned cpu, Addr line, bool excl, ReqType type, Cycle when)
    {
        Cycle at = 0;
        l2->request(cpu, line, excl, type, when,
                    [&](Cycle c, bool, bool) { at = c; });
        eq.drain();
        return at;
    }
};

TEST_F(L2CacheTest, MissGoesToMemoryThenHit)
{
    build(false);
    const Cycle first = run(0, la(0), false, ReqType::Demand, 0);
    EXPECT_GT(first, mem_params.dram_latency);
    EXPECT_EQ(l2->demandMisses(), 1u);
    EXPECT_EQ(mem->reads(), 1u);

    const Cycle second = run(0, la(0), false, ReqType::Demand, first);
    EXPECT_EQ(l2->demandHits(), 1u);
    // Hit latency: onchip (ceil 8/64 + 2 hops) + 15 lookup + data.
    EXPECT_LT(second - first, 30u);
    EXPECT_EQ(mem->reads(), 1u);
}

TEST_F(L2CacheTest, CompressedHitPaysDecompressionPenalty)
{
    build(true);
    // Zero line: compresses to 1 segment.
    run(0, la(0), false, ReqType::Demand, 0);
    // Incompressible line in another set.
    makeRaw(la(1));
    run(0, la(1), false, ReqType::Demand, 5000);

    const Cycle t0 = 10000;
    const Cycle hit_comp = run(0, la(0), false, ReqType::Demand, t0);
    const Cycle hit_raw = run(0, la(1), false, ReqType::Demand, t0 + 1000);
    EXPECT_EQ(hit_comp - t0, hit_raw - (t0 + 1000) + 5);
    EXPECT_EQ(l2->penalizedHits(), 1u);
}

TEST_F(L2CacheTest, MshrCoalescesConcurrentMisses)
{
    build(false);
    Cycle a = 0, b = 0;
    l2->request(0, la(0), false, ReqType::Demand, 0,
                [&](Cycle c, bool, bool) { a = c; });
    l2->request(1, la(0), false, ReqType::Demand, 1,
                [&](Cycle c, bool, bool) { b = c; });
    eq.drain();
    EXPECT_EQ(mem->reads(), 1u); // one fetch serves both
    EXPECT_GT(a, 0u);
    EXPECT_GE(b, a); // granted in order
    EXPECT_EQ(l2->demandMisses(), 2u);
}

TEST_F(L2CacheTest, CompressedCacheHoldsMoreLines)
{
    build(true);
    // All-zero lines: 1 segment each; 8 lines fit in one set
    // (tag-limited), where only 4 uncompressed lines would.
    for (std::uint64_t i = 0; i < 8; ++i)
        run(0, la(i * 4), false, ReqType::Demand, i * 1000);
    EXPECT_EQ(l2->setAt(0).validCount(), 8u);
    EXPECT_EQ(l2->demandMisses(), 8u);
    // All still hit.
    for (std::uint64_t i = 0; i < 8; ++i)
        run(0, la(i * 4), false, ReqType::Demand, 100000 + i * 1000);
    EXPECT_EQ(l2->demandHits(), 8u);
}

TEST_F(L2CacheTest, IncompressibleLinesLimitedToFourWays)
{
    build(true);
    for (std::uint64_t i = 0; i < 5; ++i)
        makeRaw(la(i * 4));
    for (std::uint64_t i = 0; i < 5; ++i)
        run(0, la(i * 4), false, ReqType::Demand, i * 1000);
    EXPECT_EQ(l2->setAt(0).validCount(), 4u);
}

TEST_F(L2CacheTest, EvictionInvalidatesL1Copies)
{
    build(false);
    std::vector<std::pair<unsigned, Addr>> invalidated;
    l2->setL1Invalidator([&](unsigned cpu, Addr line) {
        invalidated.emplace_back(cpu, line);
        return false;
    });
    // Fill set 0 beyond capacity (8 ways): 9 lines, same set.
    for (std::uint64_t i = 0; i < 9; ++i)
        run(0, la(i * 4), false, ReqType::Demand, i * 1000);
    ASSERT_EQ(invalidated.size(), 1u);
    EXPECT_EQ(invalidated[0].first, 0u);
    EXPECT_EQ(invalidated[0].second, la(0));
}

TEST_F(L2CacheTest, DirtyEvictionWritesBackToMemory)
{
    build(false);
    // cpu0 takes line 0 exclusive (will be dirty in L1); the L1
    // invalidator reports dirty on retrieval.
    l2->setL1Invalidator([](unsigned, Addr) { return true; });
    run(0, la(0), true, ReqType::Demand, 0);
    const auto wb_before = mem->writebacks();
    for (std::uint64_t i = 1; i < 9; ++i)
        run(0, la(i * 4), false, ReqType::Demand, 1000 * i);
    EXPECT_EQ(mem->writebacks(), wb_before + 1);
}

TEST_F(L2CacheTest, ExclusiveRequestInvalidatesOtherSharers)
{
    build(false);
    unsigned invals = 0;
    l2->setL1Invalidator([&](unsigned, Addr) {
        ++invals;
        return false;
    });
    run(0, la(0), false, ReqType::Demand, 0);
    run(1, la(0), false, ReqType::Demand, 1000);
    // cpu1 now upgrades: cpu0's copy must be invalidated.
    run(1, la(0), true, ReqType::Demand, 2000);
    EXPECT_EQ(invals, 1u);
}

TEST_F(L2CacheTest, SharedRequestDowngradesOwner)
{
    build(false);
    unsigned downgrades = 0;
    l2->setL1Downgrader([&](unsigned cpu, Addr) {
        EXPECT_EQ(cpu, 0u);
        ++downgrades;
    });
    run(0, la(0), true, ReqType::Demand, 0); // cpu0 owns M
    const Cycle plain_start = 50000;
    run(1, la(4), false, ReqType::Demand, 10000); // warm another line
    const Cycle plain =
        run(1, la(4), false, ReqType::Demand, plain_start) - plain_start;
    const Cycle t = 100000;
    const Cycle with_owner = run(1, la(0), false, ReqType::Demand, t) - t;
    EXPECT_EQ(downgrades, 1u);
    // Owner retrieval adds latency over a plain hit.
    EXPECT_GT(with_owner, plain);
}

TEST_F(L2CacheTest, L2PrefetchHitIsSquashed)
{
    build(false);
    run(0, la(0), false, ReqType::Demand, 0);
    l2->request(0, la(0), false, ReqType::L2Prefetch, 1000, nullptr);
    eq.drain();
    EXPECT_EQ(mem->reads(), 1u);
}

TEST_F(L2CacheTest, PrefetcherTrainsAndFillsWithPrefetchBit)
{
    build(false);
    PrefetcherParams pp;
    pp.startup_prefetches = 4;
    StridePrefetcher pf(pp);
    l2->setPrefetcher(0, &pf);
    // 4 sequential demand misses train a stream.
    for (std::uint64_t i = 0; i < 4; ++i)
        run(0, la(100 + i), false, ReqType::Demand, i * 2000);
    eq.drain();
    EXPECT_EQ(pf.streamsAllocated(), 1u);
    EXPECT_EQ(l2->l2PrefetchesIssued(), 4u);
    EXPECT_EQ(l2->prefetchFills(PfSource::L2), 4u);
    // The prefetched line 104 is resident with its bit set.
    const auto &set = l2->setAt(l2->setIndexOf(la(104)));
    const TagEntry *e = set.find(la(104));
    ASSERT_NE(e, nullptr);
    EXPECT_TRUE(e->prefetch);
    // First demand touch counts a prefetch hit and clears the bit.
    run(0, la(104), false, ReqType::Demand, 100000);
    EXPECT_EQ(l2->prefetchHits(PfSource::L2), 1u);
    EXPECT_FALSE(set.find(la(104))->prefetch);
}

TEST_F(L2CacheTest, AdaptiveCountsUselessEvictionAndHarmfulMiss)
{
    // The paper's uncompressed-adaptive config: 4 extra tags per set,
    // so victim tags survive even with 8 resident lines.
    build(false, false, /*extra_victim_tags=*/4);
    AdaptivePrefetchController ctl(25, true);
    l2->setAdaptiveController(&ctl);

    // Manually prefetch a line, never touch it, then force eviction.
    l2->request(0, la(0), false, ReqType::L2Prefetch, 0, nullptr);
    eq.drain();
    for (std::uint64_t i = 1; i < 9; ++i)
        run(0, la(i * 4), false, ReqType::Demand, i * 2000);
    EXPECT_EQ(ctl.uselessCount(), 1u);

    // The victim tag for line 0 remains; a demand miss on it while
    // prefetched lines sit in the set flags a harmful prefetch.
    l2->request(0, la(36 * 4), false, ReqType::L2Prefetch, 100000,
                nullptr);
    eq.drain();
    run(0, la(0), false, ReqType::Demand, 200000);
    EXPECT_EQ(ctl.harmfulCount(), 1u);
}

TEST_F(L2CacheTest, WritebackResizeEvictsWhenLineGrows)
{
    build(true);
    // Eight compressible lines fill set 0.
    for (std::uint64_t i = 0; i < 8; ++i)
        run(0, la(i * 4), false, ReqType::Demand, i * 1000);
    ASSERT_EQ(l2->setAt(0).validCount(), 8u);
    // Four lines turn incompressible one after the other; by the
    // fourth resize the 32-segment budget is exhausted and the set
    // must evict.
    for (std::uint64_t i = 0; i < 4; ++i) {
        makeRaw(la(i * 4));
        l2->writeback(0, la(i * 4), 100000 + i * 1000);
        eq.drain();
        EXPECT_EQ(l2->setAt(0).find(la(i * 4))->segments, 8u);
    }
    EXPECT_LT(l2->setAt(0).validCount(), 8u);
    EXPECT_LE(l2->setAt(0).usedSegments(), 32u);
}

TEST_F(L2CacheTest, EffectiveBytesAndRatio)
{
    build(true);
    EXPECT_EQ(l2->dataCapacityBytes(), 4u * 32 * 8);
    for (std::uint64_t i = 0; i < 8; ++i)
        run(0, la(i * 4), false, ReqType::Demand, i * 1000);
    EXPECT_EQ(l2->effectiveBytes(), 8u * kLineBytes);
    EXPECT_DOUBLE_EQ(l2->compressionRatio(), 512.0 / 1024.0);
}

TEST_F(L2CacheTest, FunctionalAccessMatchesTimedState)
{
    build(true);
    l2->accessFunctional(0, la(0), false, ReqType::Demand);
    EXPECT_EQ(l2->demandMisses(), 1u);
    EXPECT_TRUE(l2->accessFunctional(0, la(0), false, ReqType::Demand));
    EXPECT_EQ(l2->demandHits(), 1u);
    const TagEntry *e = l2->setAt(0).find(la(0));
    ASSERT_NE(e, nullptr);
    EXPECT_TRUE(e->hasSharer(0));
}

TEST_F(L2CacheTest, FunctionalModeChargesNoBandwidth)
{
    build(false);
    l2->setFunctionalMode(true);
    for (std::uint64_t i = 0; i < 9; ++i)
        l2->accessFunctional(0, la(i * 4), true, ReqType::Demand);
    EXPECT_EQ(mem->link().totalBytes(), 0u);
    EXPECT_EQ(l2->onchip().totalBytes(), 0u);
}

TEST_F(L2CacheTest, PartialHitCountsDemandOnInflightPrefetch)
{
    build(false);
    l2->request(0, la(0), false, ReqType::L2Prefetch, 0, nullptr);
    Cycle done = 0;
    l2->request(0, la(0), false, ReqType::Demand, 5,
                [&](Cycle c, bool, bool) { done = c; });
    eq.drain();
    EXPECT_EQ(mem->reads(), 1u);
    EXPECT_GT(done, 0u);
    // The fill is not marked prefetched (a demand waiter claimed it).
    EXPECT_FALSE(l2->setAt(0).find(la(0))->prefetch);
}

TEST_F(L2CacheTest, LinkCompressionReducesFillTraffic)
{
    build(true, /*link_compression=*/true);
    run(0, la(0), false, ReqType::Demand, 0); // zero line: 1 segment
    // Request header (8) + data header (8) + 1 segment (8).
    EXPECT_EQ(mem->link().totalBytes(), 24u);
}

} // namespace
} // namespace cmpsim
