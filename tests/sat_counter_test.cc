#include "src/common/sat_counter.h"

#include <gtest/gtest.h>

namespace cmpsim {
namespace {

TEST(SatCounterTest, StartsAtMax)
{
    SatCounter c(25);
    EXPECT_EQ(c.value(), 25u);
    EXPECT_TRUE(c.atMax());
    EXPECT_FALSE(c.atZero());
}

TEST(SatCounterTest, DecrementToZeroAndSaturate)
{
    SatCounter c(3);
    c.decrement();
    c.decrement();
    c.decrement();
    EXPECT_TRUE(c.atZero());
    c.decrement();
    EXPECT_EQ(c.value(), 0u);
}

TEST(SatCounterTest, IncrementSaturatesAtMax)
{
    SatCounter c(2);
    c.increment();
    EXPECT_EQ(c.value(), 2u);
    c.decrement();
    c.increment();
    c.increment();
    EXPECT_EQ(c.value(), 2u);
}

TEST(SatCounterTest, ResetReturnsToMax)
{
    SatCounter c(6);
    for (int i = 0; i < 6; ++i)
        c.decrement();
    EXPECT_TRUE(c.atZero());
    c.reset();
    EXPECT_TRUE(c.atMax());
}

TEST(SatCounterTest, UpDownSequenceTracksExactValue)
{
    SatCounter c(10);
    c.decrement(); // 9
    c.decrement(); // 8
    c.increment(); // 9
    c.decrement(); // 8
    c.decrement(); // 7
    EXPECT_EQ(c.value(), 7u);
}

} // namespace
} // namespace cmpsim
