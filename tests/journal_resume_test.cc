/**
 * @file
 * Journaled-resume contract (DESIGN.md §8): completed points land in
 * the journal as soon as their last seed finishes, a rerun restores
 * them with byte-identical summaryBytes, a crash-truncated journal
 * still loads its valid prefix, and the summaryBytes text format
 * round-trips exactly through parseSummaryBytes().
 */

#include "src/core_api/parallel_runner.h"

#include <gtest/gtest.h>

#include <fstream>
#include <string>
#include <vector>

#include "src/common/fingerprint.h"

namespace cmpsim {
namespace {

std::vector<PointSpec>
smallPoints()
{
    std::vector<PointSpec> specs;
    for (const char *wl : {"zeus", "apsi"}) {
        PointSpec spec;
        spec.config = makeConfig(/*cores=*/2, /*scale=*/8,
                                 /*cache_compression=*/true,
                                 /*link_compression=*/true,
                                 /*prefetching=*/true,
                                 /*adaptive=*/true);
        spec.benchmark = wl;
        spec.lengths.warmup_per_core = 5000;
        spec.lengths.measure_per_core = 2000;
        spec.seeds = 2;
        specs.push_back(std::move(spec));
    }
    return specs;
}

std::string
journalPath(const char *name)
{
    return ::testing::TempDir() + "cmpsim_" + name + ".journal";
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
}

// --------------------------------------------- summaryBytes format

TEST(SummaryBytesTest, RoundTripsThroughParseByteExactly)
{
    auto specs = smallPoints();
    specs.resize(1);
    const BatchResult batch = runPointsChecked(specs, 2, RunPolicy{});
    ASSERT_EQ(batch.failed(), 0u);

    const std::string bytes = summaryBytes(batch.summaries[0]);
    MetricSummary parsed;
    ASSERT_TRUE(parseSummaryBytes(bytes, parsed));
    EXPECT_EQ(parsed.runs.size(), batch.summaries[0].runs.size());
    EXPECT_EQ(summaryBytes(parsed), bytes);
}

TEST(SummaryBytesTest, ParseRejectsMalformedInput)
{
    MetricSummary out;
    EXPECT_FALSE(parseSummaryBytes("", out));
    EXPECT_FALSE(parseSummaryBytes("garbage\n", out));
    EXPECT_FALSE(parseSummaryBytes("cycles.mean=0x1p+3\n", out));
}

TEST(PointSpecBytesTest, FingerprintTracksBehaviouralKnobsOnly)
{
    auto specs = smallPoints();
    const std::uint64_t base = fnv1a(pointSpecBytes(specs[0]));

    PointSpec changed = specs[0];
    changed.config.seed = 999; // runner-owned: must not matter
    changed.config.audit_interval = 5000;
    changed.config.watchdog_cycles = 123; // observability: ditto
    EXPECT_EQ(fnv1a(pointSpecBytes(changed)), base);

    changed = specs[0];
    changed.config.cache_compression = false;
    EXPECT_NE(fnv1a(pointSpecBytes(changed)), base);

    changed = specs[0];
    changed.benchmark = "oltp";
    EXPECT_NE(fnv1a(pointSpecBytes(changed)), base);

    changed = specs[0];
    changed.seeds = 3;
    EXPECT_NE(fnv1a(pointSpecBytes(changed)), base);

    // The sharded kernel replays the sequential event order exactly,
    // so lane count is an execution detail, not a behavioural knob:
    // journal entries stay valid whatever CMPSIM_LANES says.
    changed = specs[0];
    changed.config.lanes = 8;
    EXPECT_EQ(fnv1a(pointSpecBytes(changed)), base);
}

TEST(PointSpecBytesTest, DramKnobsFingerprintOnlyWhenBackendArmed)
{
    auto specs = smallPoints();
    const std::uint64_t base = fnv1a(pointSpecBytes(specs[0]));

    // Inert knobs on the fixed backend: fingerprints (and journals
    // written before the banked backend existed) must not move.
    PointSpec changed = specs[0];
    changed.config.dram.banks = 32;
    changed.config.dram.tras = 999;
    EXPECT_EQ(fnv1a(pointSpecBytes(changed)), base);

    // Arming the backend is behavioural, as is every knob once armed.
    changed = specs[0];
    changed.config.dram.backend = DramBackendKind::Banked;
    const std::uint64_t banked = fnv1a(pointSpecBytes(changed));
    EXPECT_NE(banked, base);

    changed.config.dram.banks = 32;
    EXPECT_NE(fnv1a(pointSpecBytes(changed)), banked);

    changed.config.dram.banks = specs[0].config.dram.banks;
    changed.config.dram.sched = DramSched::Fcfs;
    EXPECT_NE(fnv1a(pointSpecBytes(changed)), banked);
}

// ----------------------------------------------------------- resume

TEST(JournalResumeTest, RerunRestoresCompletedPointsByteIdentically)
{
    const auto specs = smallPoints();
    const std::string path =
        journalPath("RerunRestoresCompletedPointsByteIdentically");
    std::remove(path.c_str());

    RunPolicy policy;
    policy.journal_path = path;

    // Uninterrupted single-worker reference run, journaling as it goes.
    const BatchResult first = runPointsChecked(specs, 1, policy);
    ASSERT_EQ(first.failed(), 0u);
    EXPECT_EQ(first.restored(), 0u);

    // Rerun over the same journal (different worker count on purpose):
    // nothing simulates, everything restores, bytes are identical.
    const BatchResult second = runPointsChecked(specs, 4, policy);
    ASSERT_EQ(second.failed(), 0u);
    EXPECT_EQ(second.restored(), specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        EXPECT_EQ(second.outcomes[i].status, PointStatus::Restored);
        EXPECT_EQ(second.outcomes[i].attempts, 0u);
        EXPECT_EQ(summaryBytes(second.summaries[i]),
                  summaryBytes(first.summaries[i]))
            << "point " << i << " diverges after journal restore";
    }
    std::remove(path.c_str());
}

TEST(JournalResumeTest, FailedPointIsNotJournaledAndRerunsClean)
{
    const auto specs = smallPoints();
    const std::string path =
        journalPath("FailedPointIsNotJournaledAndRerunsClean");
    std::remove(path.c_str());

    // Point 0 permanently fails on the first pass; point 1 completes
    // and is journaled.
    RunPolicy faulty;
    faulty.journal_path = path;
    faulty.faults = FaultPlan::parse("l2.fill:50:all:p0");
    const BatchResult interrupted = runPointsChecked(specs, 2, faulty);
    EXPECT_EQ(interrupted.outcomes[0].status, PointStatus::Failed);
    EXPECT_EQ(interrupted.outcomes[1].status, PointStatus::Ok);

    // The resumed pass (no faults) skips point 1 and simulates only
    // point 0; the batch must match an uninterrupted clean run.
    RunPolicy resume;
    resume.journal_path = path;
    const BatchResult resumed = runPointsChecked(specs, 2, resume);
    EXPECT_EQ(resumed.outcomes[0].status, PointStatus::Ok);
    EXPECT_EQ(resumed.outcomes[1].status, PointStatus::Restored);

    const BatchResult clean = runPointsChecked(specs, 1, RunPolicy{});
    for (std::size_t i = 0; i < specs.size(); ++i) {
        EXPECT_EQ(summaryBytes(resumed.summaries[i]),
                  summaryBytes(clean.summaries[i]))
            << "point " << i;
    }
    std::remove(path.c_str());
}

TEST(JournalResumeTest, TruncatedTailIsDroppedValidPrefixKept)
{
    const auto specs = smallPoints();
    const std::string path =
        journalPath("TruncatedTailIsDroppedValidPrefixKept");
    std::remove(path.c_str());

    RunPolicy policy;
    policy.journal_path = path;
    const BatchResult first = runPointsChecked(specs, 1, policy);
    ASSERT_EQ(first.failed(), 0u);

    // Simulate a crash mid-append: chop the file inside the last
    // record, then graft garbage on.
    std::string content = readFile(path);
    ASSERT_GT(content.size(), 100u);
    {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out << content.substr(0, content.size() - 37);
        out << "point 12 oops";
    }

    const BatchResult second = runPointsChecked(specs, 2, policy);
    ASSERT_EQ(second.failed(), 0u);
    // First point survives from the valid prefix; the mangled one was
    // re-simulated and re-journaled.
    EXPECT_EQ(second.outcomes[0].status, PointStatus::Restored);
    EXPECT_EQ(second.outcomes[1].status, PointStatus::Ok);
    for (std::size_t i = 0; i < specs.size(); ++i) {
        EXPECT_EQ(summaryBytes(second.summaries[i]),
                  summaryBytes(first.summaries[i]))
            << "point " << i;
    }

    // Third pass: everything restores again.
    const BatchResult third = runPointsChecked(specs, 1, policy);
    EXPECT_EQ(third.restored(), specs.size());
    std::remove(path.c_str());
}

TEST(JournalResumeTest, UnrecognisableJournalIsStartedFresh)
{
    const auto specs = smallPoints();
    const std::string path =
        journalPath("UnrecognisableJournalIsStartedFresh");
    {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out << "not a journal at all\n";
    }
    RunPolicy policy;
    policy.journal_path = path;
    const BatchResult batch = runPointsChecked(specs, 2, policy);
    EXPECT_EQ(batch.failed(), 0u);
    EXPECT_EQ(batch.restored(), 0u);
    const std::string content = readFile(path);
    EXPECT_EQ(content.compare(0, 18, "cmpsim-journal v2\n"), 0)
        << content.substr(0, 40);
    std::remove(path.c_str());
}

TEST(JournalResumeTest, InteriorCorruptionTruncatesAtFirstBadRecord)
{
    const auto specs = smallPoints();
    const std::string path =
        journalPath("InteriorCorruptionTruncatesAtFirstBadRecord");
    std::remove(path.c_str());

    RunPolicy policy;
    policy.journal_path = path;
    const BatchResult first = runPointsChecked(specs, 1, policy);
    ASSERT_EQ(first.failed(), 0u);

    // Flip one byte inside the *last* record's body. The framing still
    // lines up (same length, "end\n" intact) but the per-record CRC
    // catches it — the journal must be truncated at that record, not
    // trusted.
    std::string content = readFile(path);
    ASSERT_GT(content.size(), 100u);
    {
        std::fstream f(path, std::ios::binary | std::ios::in |
                                 std::ios::out);
        const auto off =
            static_cast<std::streamoff>(content.size() - 10);
        f.seekp(off);
        char c = content[content.size() - 10];
        c = static_cast<char>(c ^ 0x01);
        f.write(&c, 1);
    }

    const BatchResult second = runPointsChecked(specs, 2, policy);
    ASSERT_EQ(second.failed(), 0u);
    EXPECT_EQ(second.outcomes[0].status, PointStatus::Restored);
    EXPECT_EQ(second.outcomes[1].status, PointStatus::Ok)
        << "corrupt record was trusted instead of re-simulated";
    for (std::size_t i = 0; i < specs.size(); ++i) {
        EXPECT_EQ(summaryBytes(second.summaries[i]),
                  summaryBytes(first.summaries[i]))
            << "point " << i;
    }
    std::remove(path.c_str());
}

TEST(JournalResumeTest, V1JournalIsReadAndUpgradedToV2)
{
    const auto specs = smallPoints();
    const std::string path =
        journalPath("V1JournalIsReadAndUpgradedToV2");
    std::remove(path.c_str());

    RunPolicy policy;
    policy.journal_path = path;
    const BatchResult first = runPointsChecked(specs, 1, policy);
    ASSERT_EQ(first.failed(), 0u);

    // Downgrade the file to the v1 format (no per-record CRC field)
    // by rewriting each record head, exactly what a journal written
    // before the CRC existed looks like.
    const std::string v2 = readFile(path);
    ASSERT_EQ(v2.compare(0, 18, "cmpsim-journal v2\n"), 0);
    std::string v1 = "cmpsim-journal v1\n";
    std::size_t pos = 18;
    while (pos < v2.size()) {
        ASSERT_EQ(v2.compare(pos, 6, "point "), 0);
        const std::size_t nl = v2.find('\n', pos);
        ASSERT_NE(nl, std::string::npos);
        const std::string head = v2.substr(pos, nl - pos);
        // "point <fp> <len> <crc>" -> "point <fp> <len>"
        const std::size_t crc_sp = head.rfind(' ');
        ASSERT_NE(crc_sp, std::string::npos);
        const std::string fp_len = head.substr(0, crc_sp);
        const std::size_t len =
            std::stoul(fp_len.substr(fp_len.rfind(' ') + 1));
        v1 += fp_len + "\n";
        v1 += v2.substr(nl + 1, len + 4); // body + "end\n"
        pos = nl + 1 + len + 4;
    }
    {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out << v1;
    }

    // Loading the v1 file restores every point and rewrites the
    // journal in place as v2, CRCs and all.
    const BatchResult second = runPointsChecked(specs, 2, policy);
    ASSERT_EQ(second.failed(), 0u);
    EXPECT_EQ(second.restored(), specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        EXPECT_EQ(summaryBytes(second.summaries[i]),
                  summaryBytes(first.summaries[i]))
            << "point " << i;
    }
    EXPECT_EQ(readFile(path), v2) << "v1 journal was not upgraded";
    std::remove(path.c_str());
}

} // namespace
} // namespace cmpsim
