#include "src/compression/fpc.h"

#include <gtest/gtest.h>

#include "src/common/random.h"

namespace cmpsim {
namespace {

LineData
lineOfWords(std::uint32_t w)
{
    LineData d{};
    for (unsigned i = 0; i < kWordsPerLine; ++i)
        setLineWord(d, i, w);
    return d;
}

class FpcTest : public ::testing::Test
{
  protected:
    FpcCompressor fpc;

    void
    expectRoundTrip(const LineData &line)
    {
        BitStream bs;
        const auto size = fpc.compress(line, &bs);
        const LineData back = fpc.decompress(bs, size);
        ASSERT_EQ(back, line);
    }
};

TEST_F(FpcTest, ClassifyPatterns)
{
    using P = FpcCompressor::Pattern;
    EXPECT_EQ(FpcCompressor::classify(0), P::ZeroRun);
    EXPECT_EQ(FpcCompressor::classify(7), P::Se4);
    EXPECT_EQ(FpcCompressor::classify(0xfffffff9u), P::Se4); // -7
    EXPECT_EQ(FpcCompressor::classify(100), P::Se8);
    EXPECT_EQ(FpcCompressor::classify(0xffffff80u), P::Se8); // -128
    EXPECT_EQ(FpcCompressor::classify(30000), P::Se16);
    EXPECT_EQ(FpcCompressor::classify(0xffff8000u), P::Se16);
    EXPECT_EQ(FpcCompressor::classify(0x12340000u), P::LowerZero);
    EXPECT_EQ(FpcCompressor::classify(0x00660077u), P::TwoSeBytes);
    EXPECT_EQ(FpcCompressor::classify(0xff85ff93u), P::TwoSeBytes);
    EXPECT_EQ(FpcCompressor::classify(0xabababab), P::RepeatedByte);
    EXPECT_EQ(FpcCompressor::classify(0x12345678u), P::Raw);
}

TEST_F(FpcTest, ClassifyPrefersNarrowestPattern)
{
    using P = FpcCompressor::Pattern;
    // 0x11111111 is both repeated-byte and two-SE-byte halfwords?
    // halfwords 0x1111: not SE-byte. Repeated byte wins.
    EXPECT_EQ(FpcCompressor::classify(0x11111111u), P::RepeatedByte);
    // 3 is Se4, even though it is also Se8/Se16.
    EXPECT_EQ(FpcCompressor::classify(3), P::Se4);
}

TEST_F(FpcTest, AllZeroLineIsOneSegment)
{
    const auto size = fpc.compress(zeroLine());
    // 16 zero words -> two runs of 8 -> 2*(3+3) = 12 bits -> 1 segment.
    EXPECT_EQ(size.bits, 12u);
    EXPECT_EQ(size.segments, 1u);
    EXPECT_TRUE(size.isCompressed());
}

TEST_F(FpcTest, ZeroRunCappedAtEight)
{
    LineData d{};
    setLineWord(d, 8, 0x12345678u); // splits zeros into 8 + (7 after)
    const auto size = fpc.compress(d);
    // run(8) + raw + run(7): 6 + 35 + 6 = 47 bits.
    EXPECT_EQ(size.bits, 47u);
    EXPECT_EQ(size.segments, 1u);
    expectRoundTrip(d);
}

TEST_F(FpcTest, SmallIntLineCompressesHard)
{
    const auto size = fpc.compress(lineOfWords(5));
    // 16 * (3+4) = 112 bits -> 2 segments.
    EXPECT_EQ(size.bits, 112u);
    EXPECT_EQ(size.segments, 2u);
}

TEST_F(FpcTest, RandomDataStaysUncompressed)
{
    Random rng(99);
    LineData d{};
    for (unsigned i = 0; i < kWordsPerLine; ++i)
        setLineWord(d, i, 0x80000000u |
                              static_cast<std::uint32_t>(rng.next()));
    const auto size = fpc.compress(d);
    EXPECT_EQ(size.segments, kSegmentsPerLine);
    EXPECT_FALSE(size.isCompressed());
    expectRoundTrip(d);
}

TEST_F(FpcTest, SegmentsNeverExceedLine)
{
    // A line that is exactly incompressible: 16 raw words = 16*35 =
    // 560 bits > 512, must fall back to raw (8 segments, 512 bits).
    LineData d{};
    for (unsigned i = 0; i < kWordsPerLine; ++i)
        setLineWord(d, i, 0x89abcdefu + i * 0x01010101u);
    const auto size = fpc.compress(d);
    EXPECT_EQ(size.segments, kSegmentsPerLine);
    EXPECT_EQ(size.bits, kLineBytes * 8);
    expectRoundTrip(d);
}

TEST_F(FpcTest, RoundTripEachSinglePattern)
{
    expectRoundTrip(zeroLine());
    expectRoundTrip(lineOfWords(7));           // Se4
    expectRoundTrip(lineOfWords(0xffffff9cu)); // Se8 (-100)
    expectRoundTrip(lineOfWords(12345));       // Se16
    expectRoundTrip(lineOfWords(0xbeef0000u)); // LowerZero
    expectRoundTrip(lineOfWords(0x00140037u)); // TwoSeBytes
    expectRoundTrip(lineOfWords(0x77777777u)); // RepeatedByte
}

TEST_F(FpcTest, RoundTripMixedLine)
{
    LineData d{};
    setLineWord(d, 0, 0);
    setLineWord(d, 1, 42);
    setLineWord(d, 2, 0xdead0000u);
    setLineWord(d, 3, 0x12345678u);
    setLineWord(d, 4, 0xcccccccc);
    setLineWord(d, 5, 0xfffffff0u);
    for (unsigned i = 6; i < kWordsPerLine; ++i)
        setLineWord(d, i, i);
    expectRoundTrip(d);
}

TEST_F(FpcTest, CompressIsDeterministic)
{
    const LineData d = lineOfWords(0x00010002u);
    const auto a = fpc.compress(d);
    const auto b = fpc.compress(d);
    EXPECT_EQ(a.bits, b.bits);
    EXPECT_EQ(a.segments, b.segments);
}

TEST_F(FpcTest, DataBitsMatchSpec)
{
    using P = FpcCompressor::Pattern;
    EXPECT_EQ(FpcCompressor::dataBits(P::ZeroRun), 3u);
    EXPECT_EQ(FpcCompressor::dataBits(P::Se4), 4u);
    EXPECT_EQ(FpcCompressor::dataBits(P::Se8), 8u);
    EXPECT_EQ(FpcCompressor::dataBits(P::Se16), 16u);
    EXPECT_EQ(FpcCompressor::dataBits(P::LowerZero), 16u);
    EXPECT_EQ(FpcCompressor::dataBits(P::TwoSeBytes), 16u);
    EXPECT_EQ(FpcCompressor::dataBits(P::RepeatedByte), 8u);
    EXPECT_EQ(FpcCompressor::dataBits(P::Raw), 32u);
}

/** Property test: lossless round-trip over random pattern mixes. */
class FpcPropertyTest : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(FpcPropertyTest, RandomizedRoundTripAndSizeBound)
{
    Random rng(GetParam());
    FpcCompressor fpc;
    for (int trial = 0; trial < 400; ++trial) {
        LineData d{};
        for (unsigned i = 0; i < kWordsPerLine; ++i) {
            // Draw from a mixture that hits all patterns.
            switch (rng.below(8)) {
              case 0:
                setLineWord(d, i, 0);
                break;
              case 1:
                setLineWord(d, i, static_cast<std::uint32_t>(
                                      rng.inRange(0, 15)) -
                                      8);
                break;
              case 2:
                setLineWord(d, i, static_cast<std::uint32_t>(
                                      static_cast<std::int32_t>(
                                          rng.inRange(0, 255)) -
                                      128));
                break;
              case 3:
                setLineWord(d, i, static_cast<std::uint32_t>(
                                      static_cast<std::int32_t>(
                                          rng.inRange(0, 65535)) -
                                      32768));
                break;
              case 4:
                setLineWord(d, i,
                            static_cast<std::uint32_t>(rng.next()) << 16);
                break;
              case 5: {
                const auto b = static_cast<std::uint32_t>(rng.below(256));
                setLineWord(d, i, b * 0x01010101u);
                break;
              }
              default:
                setLineWord(d, i, static_cast<std::uint32_t>(rng.next()));
                break;
            }
        }
        BitStream bs;
        const auto size = fpc.compress(d, &bs);
        ASSERT_GE(size.segments, 1u);
        ASSERT_LE(size.segments, kSegmentsPerLine);
        if (size.isCompressed()) {
            ASSERT_LE(size.bits, size.segments * kSegmentBytes * 8);
            ASSERT_EQ(bs.sizeBits(), size.bits);
        }
        const LineData back = fpc.decompress(bs, size);
        ASSERT_EQ(back, d);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FpcPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

} // namespace
} // namespace cmpsim
