#include "src/cache/l1_cache.h"

#include <gtest/gtest.h>

#include <memory>

#include "src/compression/fpc.h"

namespace cmpsim {
namespace {

/** Two-core L1/L2 hierarchy over real memory. */
class L1CacheTest : public ::testing::Test
{
  protected:
    EventQueue eq;
    FpcCompressor fpc;
    ValueStore values{fpc};
    std::unique_ptr<MainMemory> mem;
    std::unique_ptr<L2Cache> l2;
    std::vector<std::unique_ptr<L1Cache>> l1s;

    void
    build(unsigned l1_sets = 4, unsigned victim_tags = 0)
    {
        MemoryParams mp;
        mem = std::make_unique<MainMemory>(eq, values, mp);

        L2Params p2;
        p2.sets = 64;
        p2.banks = 2;
        p2.cores = 2;
        l2 = std::make_unique<L2Cache>(eq, values, *mem, p2);

        L1Params p1;
        p1.sets = l1_sets;
        p1.ways = 4;
        p1.victim_tags = victim_tags;
        for (unsigned c = 0; c < 2; ++c)
            l1s.push_back(std::make_unique<L1Cache>(eq, *l2, c, p1));

        l2->setL1Invalidator([this](unsigned cpu, Addr line) {
            return l1s[cpu]->invalidateLine(line);
        });
        l2->setL1Downgrader([this](unsigned cpu, Addr line) {
            l1s[cpu]->downgradeLine(line);
        });
    }

    Addr
    la(std::uint64_t i)
    {
        return i << kLineShift;
    }

    Cycle
    run(unsigned cpu, Addr addr, bool write, Cycle when)
    {
        Cycle at = 0;
        l1s[cpu]->access(addr, write, when, [&](Cycle c) { at = c; });
        eq.drain();
        return at;
    }
};

TEST_F(L1CacheTest, HitTakesThreeCycles)
{
    build();
    run(0, 0x1000, false, 0); // warm
    const Cycle t = run(0, 0x1000, false, 10000);
    EXPECT_EQ(t, 10003u);
    EXPECT_EQ(l1s[0]->hits(), 1u);
    EXPECT_EQ(l1s[0]->misses(), 1u);
}

TEST_F(L1CacheTest, SameLineDifferentWordsHit)
{
    build();
    run(0, 0x1000, false, 0);
    run(0, 0x1030, false, 10000);
    EXPECT_EQ(l1s[0]->hits(), 1u);
}

TEST_F(L1CacheTest, MissThroughL2HitIsTensOfCycles)
{
    build();
    run(0, 0x1000, false, 0);
    // Evict from L1 only: fill set 0 of L1 (4 ways) with other lines
    // mapping to the same L1 set (sets=4 -> stride 4 lines).
    for (std::uint64_t i = 1; i <= 4; ++i)
        run(0, la(i * 4), false, i * 10000);
    const Cycle t0 = 100000;
    const Cycle t = run(0, 0x1000, false, t0);
    EXPECT_GT(t - t0, 15u);
    EXPECT_LT(t - t0, 40u); // well below the ~420-cycle memory path
}

TEST_F(L1CacheTest, MissThroughMemoryIsHundredsOfCycles)
{
    build();
    const Cycle t = run(0, 0x1000, false, 0);
    EXPECT_GT(t, 400u);
    EXPECT_LT(t, 500u);
}

TEST_F(L1CacheTest, WriteMissInstallsModified)
{
    build();
    run(0, 0x2000, true, 0);
    const TagEntry *e = l1s[0]->setAt(
        static_cast<unsigned>(lineNumber(0x2000) % 4)).find(la(128));
    ASSERT_NE(e, nullptr);
    EXPECT_TRUE(e->dirty);
    // Write hit afterwards completes locally in 3 cycles.
    const Cycle t = run(0, 0x2000, true, 50000);
    EXPECT_EQ(t, 50003u);
    EXPECT_EQ(l1s[0]->hits(), 1u);
}

TEST_F(L1CacheTest, WriteToSharedLineUpgrades)
{
    build();
    run(0, 0x3000, false, 0);     // S in cpu0
    run(1, 0x3000, false, 10000); // S in cpu1
    const Cycle t0 = 50000;
    const Cycle t = run(0, 0x3000, true, t0);
    EXPECT_GT(t - t0, 3u); // upgrade round trip, not a local hit
    // cpu1's copy is gone.
    EXPECT_EQ(l1s[1]->setAt(
        static_cast<unsigned>(lineNumber(0x3000) % 4)).find(
            lineAddr(0x3000)), nullptr);
    // cpu0 is now M.
    const TagEntry *e = l1s[0]->setAt(
        static_cast<unsigned>(lineNumber(0x3000) % 4)).find(
            lineAddr(0x3000));
    ASSERT_NE(e, nullptr);
    EXPECT_TRUE(e->dirty);
}

TEST_F(L1CacheTest, ReadOfModifiedLineDowngradesOwner)
{
    build();
    run(0, 0x4000, true, 0); // M in cpu0
    run(1, 0x4000, false, 50000);
    const TagEntry *e0 = l1s[0]->setAt(
        static_cast<unsigned>(lineNumber(0x4000) % 4)).find(
            lineAddr(0x4000));
    ASSERT_NE(e0, nullptr);
    EXPECT_FALSE(e0->dirty); // demoted to S
    // Both are sharers at the L2.
    const TagEntry *e2 =
        l2->setAt(l2->setIndexOf(lineAddr(0x4000))).find(
            lineAddr(0x4000));
    ASSERT_NE(e2, nullptr);
    EXPECT_TRUE(e2->hasSharer(0));
    EXPECT_TRUE(e2->hasSharer(1));
    EXPECT_TRUE(e2->dirty); // L2 holds the merged data
}

TEST_F(L1CacheTest, DirtyEvictionWritesBackToL2)
{
    build();
    run(0, 0x1000, true, 0); // M
    const auto onchip_before = l2->onchip().totalBytes();
    // Evict from L1 set 0.
    for (std::uint64_t i = 1; i <= 4; ++i)
        run(0, la(64 + i * 4), false, i * 10000); // other L2 sets
    EXPECT_GE(l2->onchip().totalBytes(),
              onchip_before + kLineBytes);
    // L2's copy is dirty and unowned.
    const TagEntry *e =
        l2->setAt(l2->setIndexOf(la(64))).find(la(64));
    ASSERT_NE(e, nullptr);
    EXPECT_TRUE(e->dirty);
    EXPECT_EQ(e->owner, kNoOwner);
}

TEST_F(L1CacheTest, InclusionL2EvictionDropsL1Line)
{
    build(64); // big L1 so nothing self-evicts
    run(0, la(0), false, 0);
    // Fill L2 set 0 (8 ways; L2 sets=64 -> stride 64 lines).
    for (std::uint64_t i = 1; i <= 8; ++i)
        run(0, la(i * 64), false, i * 10000);
    EXPECT_EQ(l1s[0]->setAt(0).find(la(0)), nullptr);
    EXPECT_GE(l1s[0]->accesses(), 9u);
}

TEST_F(L1CacheTest, MshrCoalescesSameLine)
{
    build();
    Cycle a = 0, b = 0;
    l1s[0]->access(0x5000, false, 0, [&](Cycle c) { a = c; });
    l1s[0]->access(0x5008, false, 1, [&](Cycle c) { b = c; });
    eq.drain();
    EXPECT_EQ(l1s[0]->misses(), 2u);
    EXPECT_EQ(l2->demandMisses(), 1u); // one L2 request
    EXPECT_EQ(a, b);
}

TEST_F(L1CacheTest, CanAcceptHonorsMshrLimit)
{
    build();
    // Issue 16 distinct-line misses; the 17th is refused.
    for (std::uint64_t i = 0; i < 16; ++i) {
        ASSERT_TRUE(l1s[0]->canAccept(la(i * 4)));
        l1s[0]->access(la(i * 4), false, 0, [](Cycle) {});
    }
    EXPECT_FALSE(l1s[0]->canAccept(la(999)));
    // Same-line accesses still coalesce.
    EXPECT_TRUE(l1s[0]->canAccept(la(0)));
    eq.drain();
    EXPECT_TRUE(l1s[0]->canAccept(la(999)));
}

TEST_F(L1CacheTest, PrefetchFillSetsBitAndFirstUseClears)
{
    build();
    l1s[0]->prefetchLine(la(0), 0);
    eq.drain();
    const TagEntry *e = l1s[0]->setAt(0).find(la(0));
    ASSERT_NE(e, nullptr);
    EXPECT_TRUE(e->prefetch);
    EXPECT_EQ(l1s[0]->prefetchesIssued(), 1u);

    run(0, la(0), false, 50000);
    EXPECT_EQ(l1s[0]->prefetchHits(), 1u);
    EXPECT_FALSE(l1s[0]->setAt(0).find(la(0))->prefetch);
    EXPECT_EQ(l1s[0]->hits(), 1u); // prefetch made it a hit
}

TEST_F(L1CacheTest, PrefetcherTrainedByDemandMisses)
{
    build(64);
    PrefetcherParams pp;
    pp.startup_prefetches = 6;
    StridePrefetcher pf(pp);
    l1s[0]->setPrefetcher(&pf);
    for (std::uint64_t i = 0; i < 4; ++i)
        run(0, la(100 + i), false, i * 10000);
    eq.drain();
    EXPECT_EQ(pf.streamsAllocated(), 1u);
    EXPECT_EQ(l1s[0]->prefetchesIssued(), 6u);
    // Lines 104..109 now hit in the L1.
    const Cycle t0 = 1000000;
    EXPECT_EQ(run(0, la(104), false, t0), t0 + 3);
}

TEST_F(L1CacheTest, PrefetchSquashedWhenPresent)
{
    build();
    run(0, la(0), false, 0);
    l1s[0]->prefetchLine(la(0), 10000);
    eq.drain();
    EXPECT_EQ(l1s[0]->prefetchesIssued(), 0u);
}

TEST_F(L1CacheTest, PrefetchDroppedWhenMshrsNearlyFull)
{
    build();
    for (std::uint64_t i = 0; i < 14; ++i)
        l1s[0]->access(la(i * 4), false, 0, [](Cycle) {});
    l1s[0]->prefetchLine(la(100), 0);
    eq.drain();
    EXPECT_EQ(l1s[0]->prefetchesIssued(), 0u);
}

TEST_F(L1CacheTest, AdaptiveVictimTagsDetectHarmfulPrefetch)
{
    build(4, /*victim_tags=*/4);
    AdaptivePrefetchController ctl(6, true);
    l1s[0]->setAdaptiveController(&ctl);
    // Resident line la(0), then 4 prefetches evict it.
    run(0, la(0), false, 0);
    for (std::uint64_t i = 1; i <= 4; ++i) {
        l1s[0]->prefetchLine(la(i * 4), 10000 * i);
        eq.drain();
    }
    EXPECT_EQ(l1s[0]->setAt(0).find(la(0)), nullptr);
    // Demand miss on la(0): victim tag + resident prefetched lines.
    run(0, la(0), false, 100000);
    EXPECT_EQ(ctl.harmfulCount(), 1u);
    EXPECT_EQ(l1s[0]->misses(), 2u);
}

TEST_F(L1CacheTest, UselessPrefetchEvictionDecrements)
{
    build(4);
    AdaptivePrefetchController ctl(6, true);
    l1s[0]->setAdaptiveController(&ctl);
    l1s[0]->prefetchLine(la(0), 0);
    eq.drain();
    for (std::uint64_t i = 1; i <= 4; ++i)
        run(0, la(i * 4), false, 10000 * i);
    EXPECT_EQ(ctl.uselessCount(), 1u);
    EXPECT_EQ(ctl.allowedStartup(), 5u);
}

TEST_F(L1CacheTest, FunctionalWarmupPopulatesBothLevels)
{
    build();
    EXPECT_FALSE(l1s[0]->accessFunctional(0x7000, false));
    EXPECT_TRUE(l1s[0]->accessFunctional(0x7000, false));
    EXPECT_NE(l2->setAt(l2->setIndexOf(lineAddr(0x7000)))
                  .find(lineAddr(0x7000)),
              nullptr);
    EXPECT_EQ(mem->link().totalBytes(), 0u);
    EXPECT_EQ(l2->onchip().totalBytes(), 0u);
}

TEST_F(L1CacheTest, FunctionalWriteTracksCoherence)
{
    build();
    l1s[0]->accessFunctional(0x8000, false);
    l1s[1]->accessFunctional(0x8000, true);
    // cpu0's copy was invalidated functionally.
    EXPECT_EQ(l1s[0]->setAt(
        static_cast<unsigned>(lineNumber(0x8000) % 4)).find(
            lineAddr(0x8000)), nullptr);
    const TagEntry *e =
        l2->setAt(l2->setIndexOf(lineAddr(0x8000))).find(
            lineAddr(0x8000));
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->owner, 1);
}

TEST_F(L1CacheTest, DecompressionAvoidanceTracked)
{
    // Compressed L2: prefetch a compressed line into L1, then use it.
    MemoryParams mp;
    mem = std::make_unique<MainMemory>(eq, values, mp);
    L2Params p2;
    p2.sets = 64;
    p2.banks = 2;
    p2.cores = 2;
    p2.compressed = true;
    p2.segment_budget = 32;
    l2 = std::make_unique<L2Cache>(eq, values, *mem, p2);
    L1Params p1;
    p1.sets = 4;
    l1s.push_back(std::make_unique<L1Cache>(eq, *l2, 0, p1));

    // Line 0 is all zeros: compressed in L2 after the first demand
    // fetch (via cpu-less direct request) — use prefetch then use.
    Cycle done = 0;
    l2->request(0, la(0), false, ReqType::Demand, 0,
                [&](Cycle c, bool, bool) { done = c; });
    eq.drain();
    ASSERT_GT(done, 0u);
    l1s[0]->prefetchLine(la(0), done + 100);
    eq.drain();
    run(0, la(0), false, done + 50000);
    EXPECT_EQ(l1s[0]->decompAvoided(), 1u);
}

} // namespace
} // namespace cmpsim
