/**
 * @file
 * Fault-injection harness + crash-containment contract (DESIGN.md §8):
 * the CMPSIM_FAULT grammar, deterministic triggering at named sites,
 * batch containment and retry in runPointsChecked(), the livelock
 * watchdog, and the wall-clock point deadline.
 */

#include "src/sim/fault_injection.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/common/fingerprint.h"
#include "src/core_api/cmp_system.h"
#include "src/core_api/parallel_runner.h"
#include "src/sample/sampling_controller.h"
#include "src/workload/workload_params.h"

namespace cmpsim {
namespace {

/** Two small full-feature points, two seeds each. */
std::vector<PointSpec>
smallPoints()
{
    std::vector<PointSpec> specs;
    for (const char *wl : {"zeus", "apsi"}) {
        PointSpec spec;
        spec.config = makeConfig(/*cores=*/2, /*scale=*/8,
                                 /*cache_compression=*/true,
                                 /*link_compression=*/true,
                                 /*prefetching=*/true,
                                 /*adaptive=*/true);
        spec.benchmark = wl;
        spec.lengths.warmup_per_core = 5000;
        spec.lengths.measure_per_core = 2000;
        spec.seeds = 2;
        specs.push_back(std::move(spec));
    }
    return specs;
}

std::vector<std::uint64_t>
fingerprints(const BatchResult &batch)
{
    std::vector<std::uint64_t> hashes;
    for (const auto &s : batch.summaries)
        hashes.push_back(fnv1a(summaryBytes(s)));
    return hashes;
}

// ------------------------------------------------------ plan grammar

TEST(FaultPlanTest, ParsesFullGrammar)
{
    const FaultPlan plan = FaultPlan::parse(
        "l2.fill:100,link.transfer:5:all:p1:s2,core.stall:1:stall:3");
    ASSERT_EQ(plan.specs().size(), 3u);

    const FaultSpec &a = plan.specs()[0];
    EXPECT_EQ(a.site, "l2.fill");
    EXPECT_EQ(a.nth, 100u);
    EXPECT_EQ(a.fail_attempts, 1u);
    EXPECT_EQ(a.kind, FaultKind::Throw);
    EXPECT_EQ(a.point, kFaultAnyPoint);
    EXPECT_EQ(a.seed, kFaultAnySeed);

    const FaultSpec &b = plan.specs()[1];
    EXPECT_EQ(b.site, "link.transfer");
    EXPECT_EQ(b.fail_attempts, kFaultAllAttempts);
    EXPECT_EQ(b.point, 1u);
    EXPECT_EQ(b.seed, 2u);

    const FaultSpec &c = plan.specs()[2];
    EXPECT_EQ(c.kind, FaultKind::Stall);
    EXPECT_EQ(c.fail_attempts, 3u);
}

TEST(FaultPlanTest, EmptySpecYieldsEmptyPlan)
{
    EXPECT_TRUE(FaultPlan::parse("").empty());
    EXPECT_TRUE(FaultPlan{}.empty());
}

TEST(FaultPlanTest, MalformedSpecsThrowConfigError)
{
    EXPECT_THROW(FaultPlan::parse("l2.fill"), ConfigError);
    EXPECT_THROW(FaultPlan::parse("l2.fill:zero"), ConfigError);
    EXPECT_THROW(FaultPlan::parse("l2.fill:0"), ConfigError);
    EXPECT_THROW(FaultPlan::parse("l2.fill:1:bogus"), ConfigError);
    EXPECT_THROW(FaultPlan::parse("l2.fill:1:p"), ConfigError);
    EXPECT_THROW(FaultPlan::parse(":5"), ConfigError);
}

// ------------------------------------------------------- site probes

TEST(FaultProbeTest, UnarmedProbesAreInert)
{
    EXPECT_NO_THROW(faultSite("l2.fill"));
    EXPECT_FALSE(faultStallActive("core.stall"));
    EXPECT_NO_THROW(checkPointDeadline("test"));
}

TEST(FaultProbeTest, ThrowsOnExactlyTheNthHit)
{
    const FaultPlan plan = FaultPlan::parse("l2.fill:3");
    FaultArmGuard arm(plan, /*attempt=*/1);
    EXPECT_NO_THROW(faultSite("l2.fill"));
    EXPECT_NO_THROW(faultSite("other.site"));
    EXPECT_NO_THROW(faultSite("l2.fill"));
    try {
        faultSite("l2.fill"); // third hit
        FAIL() << "third hit did not throw";
    } catch (const InjectedFault &e) {
        EXPECT_EQ(e.context(), "l2.fill");
    }
    // Past the nth occurrence the site is quiet again.
    EXPECT_NO_THROW(faultSite("l2.fill"));
}

TEST(FaultProbeTest, TransientFaultSkipsLaterAttempts)
{
    const FaultPlan plan = FaultPlan::parse("l2.fill:1");
    {
        FaultArmGuard arm(plan, /*attempt=*/1);
        EXPECT_THROW(faultSite("l2.fill"), InjectedFault);
    }
    {
        FaultArmGuard arm(plan, /*attempt=*/2);
        EXPECT_NO_THROW(faultSite("l2.fill"));
    }
}

TEST(FaultProbeTest, StallLatchesAndSticks)
{
    const FaultPlan plan = FaultPlan::parse("core.stall:2:stall:all");
    FaultArmGuard arm(plan, 1);
    EXPECT_FALSE(faultStallActive("core.stall"));
    EXPECT_TRUE(faultStallActive("core.stall")); // second hit latches
    EXPECT_TRUE(faultStallActive("core.stall")); // sticky
}

TEST(FaultProbeTest, DeadlineGuardThrowsWatchdogTimeout)
{
    DeadlineGuard deadline(1e-9);
    try {
        checkPointDeadline("unit");
        FAIL() << "expired deadline did not throw";
    } catch (const WatchdogTimeout &e) {
        EXPECT_NE(std::string(e.what()).find("CMPSIM_POINT_TIMEOUT"),
                  std::string::npos)
            << e.what();
    }
}

TEST(FaultProbeTest, LaneSyncFiresOnlyInShardedKernel)
{
    // The lane.sync site is probed by the sharded kernel's coordinator
    // once per quantum, just before releasing the lanes.
    const FaultPlan plan = FaultPlan::parse("lane.sync:5");
    {
        // lanes=1 dispatches to the single-threaded kernel, which has
        // no barrier: the armed plan must be inert.
        SystemConfig cfg = makeConfig(2, 8, false, false, false, false);
        cfg.lanes = 1;
        CmpSystem sys(cfg, benchmarkParams("zeus"));
        FaultArmGuard arm(plan, /*attempt=*/1);
        EXPECT_NO_THROW(sys.run(500));
    }
    {
        SystemConfig cfg = makeConfig(2, 8, false, false, false, false);
        cfg.lanes = 2;
        CmpSystem sys(cfg, benchmarkParams("zeus"));
        FaultArmGuard arm(plan, /*attempt=*/1);
        EXPECT_THROW(sys.run(500), InjectedFault);
    }
}

TEST(FaultProbeTest, SamplingSitesFireDuringSampledRuns)
{
    // The sampling engine exposes two sites: sample.ff (once per
    // fast-forward chunk) and sample.interval (once per interval).
    SystemConfig cfg = makeConfig(2, 8, false, false, false, false);
    cfg.sampling = SamplingPlan::parse("4000:1000:3");
    {
        const FaultPlan plan = FaultPlan::parse("sample.ff:2");
        CmpSystem sys(cfg, benchmarkParams("zeus"));
        SamplingController ctl(sys);
        FaultArmGuard arm(plan, /*attempt=*/1);
        try {
            ctl.run();
            FAIL() << "sample.ff fault did not fire";
        } catch (const InjectedFault &e) {
            EXPECT_EQ(e.context(), "sample.ff");
        }
    }
    {
        const FaultPlan plan = FaultPlan::parse("sample.interval:3");
        CmpSystem sys(cfg, benchmarkParams("zeus"));
        SamplingController ctl(sys);
        FaultArmGuard arm(plan, /*attempt=*/1);
        try {
            ctl.run();
            FAIL() << "sample.interval fault did not fire";
        } catch (const InjectedFault &e) {
            EXPECT_EQ(e.context(), "sample.interval");
        }
    }
    {
        // Unsampled runs never touch either site.
        const FaultPlan plan =
            FaultPlan::parse("sample.ff:1,sample.interval:1");
        SystemConfig plain = makeConfig(2, 8, false, false, false,
                                        false);
        CmpSystem sys(plain, benchmarkParams("zeus"));
        FaultArmGuard arm(plan, /*attempt=*/1);
        sys.warmup(2000);
        EXPECT_NO_THROW(sys.run(1000));
    }
}

TEST(FaultContainmentTest, SampledPointFaultIsContainedAndRetried)
{
    // A transient fast-forward fault inside a sampled point must be
    // contained by the batch runner and retried to a clean result,
    // exactly like any other site.
    auto specs = smallPoints();
    specs.resize(1);
    specs[0].config.sampling = SamplingPlan::parse("4000:1000:3");
    specs[0].lengths.measure_per_core = 0; // sampled runs ignore it

    RunPolicy clean;
    const BatchResult expected = runPointsChecked(specs, 2, clean);
    ASSERT_EQ(expected.failed(), 0u);

    RunPolicy faulty;
    faulty.max_attempts = 2;
    faulty.faults = FaultPlan::parse("sample.ff:5:p0");
    const BatchResult batch = runPointsChecked(specs, 2, faulty);

    EXPECT_EQ(batch.failed(), 0u);
    EXPECT_EQ(batch.outcomes[0].attempts, 2u);
    EXPECT_EQ(fingerprints(batch), fingerprints(expected));
}

// ----------------------------------------------- batch containment

TEST(FaultContainmentTest, TransientL2FillFaultIsRetriedToSuccess)
{
    const auto specs = smallPoints();

    RunPolicy clean;
    const BatchResult expected = runPointsChecked(specs, 2, clean);
    ASSERT_EQ(expected.failed(), 0u);

    // First attempt of point 0 throws at its 50th L2 fill; the retry
    // (attempt 2) runs fault-free and must reproduce the clean batch
    // byte-for-byte.
    RunPolicy faulty;
    faulty.max_attempts = 2;
    faulty.faults = FaultPlan::parse("l2.fill:50:p0");
    const BatchResult batch = runPointsChecked(specs, 2, faulty);

    EXPECT_EQ(batch.failed(), 0u);
    ASSERT_EQ(batch.outcomes.size(), 2u);
    EXPECT_EQ(batch.outcomes[0].status, PointStatus::Ok);
    EXPECT_EQ(batch.outcomes[0].attempts, 2u);
    EXPECT_EQ(batch.outcomes[1].status, PointStatus::Ok);
    EXPECT_EQ(batch.outcomes[1].attempts, 1u);
    EXPECT_EQ(fingerprints(batch), fingerprints(expected));
    EXPECT_EQ(batch.failureSummary(), "");
}

TEST(FaultContainmentTest, PermanentFaultFailsOnePointNotTheBatch)
{
    const auto specs = smallPoints();

    RunPolicy clean;
    const BatchResult expected = runPointsChecked(specs, 2, clean);

    RunPolicy faulty;
    faulty.max_attempts = 2;
    faulty.faults = FaultPlan::parse("l2.fill:50:all:p0");
    const BatchResult batch = runPointsChecked(specs, 2, faulty);

    EXPECT_EQ(batch.failed(), 1u);
    EXPECT_EQ(batch.outcomes[0].status, PointStatus::Failed);
    EXPECT_EQ(batch.outcomes[0].error_kind, ErrorKind::Injected);
    EXPECT_EQ(batch.outcomes[0].attempts, 2u);
    EXPECT_NE(batch.outcomes[0].error.find("l2.fill"),
              std::string::npos)
        << batch.outcomes[0].error;

    // The healthy point is untouched by its neighbour's failure.
    EXPECT_EQ(batch.outcomes[1].status, PointStatus::Ok);
    EXPECT_EQ(fnv1a(summaryBytes(batch.summaries[1])),
              fnv1a(summaryBytes(expected.summaries[1])));

    const std::string digest = batch.failureSummary();
    EXPECT_NE(digest.find("1/2 points failed"), std::string::npos)
        << digest;
    EXPECT_NE(digest.find("point 0"), std::string::npos) << digest;
}

TEST(FaultContainmentTest, DeterministicErrorsAreNotRetried)
{
    // workload.gen faults on every attempt would be retried if the
    // runner honoured only the attempt bound; a WorkloadError must
    // instead fail fast. Use an unknown benchmark for a genuinely
    // deterministic failure.
    auto specs = smallPoints();
    specs[0].benchmark = "no-such-benchmark";

    RunPolicy policy;
    policy.max_attempts = 3;
    const BatchResult batch = runPointsChecked(specs, 2, policy);

    EXPECT_EQ(batch.outcomes[0].status, PointStatus::Failed);
    EXPECT_EQ(batch.outcomes[0].error_kind, ErrorKind::Workload);
    EXPECT_EQ(batch.outcomes[0].attempts, 1u); // no retry burned
    EXPECT_EQ(batch.outcomes[1].status, PointStatus::Ok);
}

TEST(FaultContainmentTest, SeedSelectorHitsOnlyThatSeed)
{
    auto specs = smallPoints();
    specs.resize(1);

    RunPolicy faulty;
    faulty.max_attempts = 1;
    faulty.faults = FaultPlan::parse("workload.gen:1:all:s2");
    const BatchResult batch = runPointsChecked(specs, 2, faulty);

    // Seed 1 ran clean; seed 2 failed, sinking the point.
    EXPECT_EQ(batch.outcomes[0].status, PointStatus::Failed);
    EXPECT_EQ(batch.outcomes[0].error_kind, ErrorKind::Injected);
    EXPECT_GT(batch.summaries[0].runs[0].instructions, 0.0);
}

TEST(FaultContainmentTest, StrictRunPointsThrowsTheFailureSummary)
{
    auto specs = smallPoints();
    specs.resize(1);
    specs[0].benchmark = "no-such-benchmark";
    try {
        runPoints(specs, 1);
        FAIL() << "runPoints did not throw";
    } catch (const SimError &e) {
        EXPECT_EQ(e.kind(), ErrorKind::Workload);
        EXPECT_NE(std::string(e.what()).find("points failed"),
                  std::string::npos)
            << e.what();
    }
}

// --------------------------------------------------------- watchdog

TEST(WatchdogTest, InjectedLivelockTerminatesViaWatchdog)
{
    auto specs = smallPoints();
    specs.resize(1);
    specs[0].seeds = 1;
    // Keep the bound small so the test is quick; the livelocked loop
    // advances one cycle per iteration.
    specs[0].config.watchdog_cycles = 50000;

    RunPolicy policy;
    policy.max_attempts = 1;
    policy.faults = FaultPlan::parse("core.stall:1:all:stall");
    const BatchResult batch = runPointsChecked(specs, 1, policy);

    ASSERT_EQ(batch.outcomes.size(), 1u);
    EXPECT_EQ(batch.outcomes[0].status, PointStatus::Failed);
    EXPECT_EQ(batch.outcomes[0].error_kind, ErrorKind::Watchdog);
    EXPECT_NE(batch.outcomes[0].error.find("no instruction retired"),
              std::string::npos)
        << batch.outcomes[0].error;
    // The diagnostic dump names the cores and the event queue.
    EXPECT_NE(batch.outcomes[0].error.find("core.0"), std::string::npos)
        << batch.outcomes[0].error;
    EXPECT_NE(batch.outcomes[0].error.find("eq.size"), std::string::npos)
        << batch.outcomes[0].error;
}

TEST(WatchdogTest, WatchdogIsTransientSoRetryRunsClean)
{
    // A livelock injected only on attempt 1 trips the watchdog, which
    // is classified transient; attempt 2 must complete the point.
    auto specs = smallPoints();
    specs.resize(1);
    specs[0].seeds = 1;
    specs[0].config.watchdog_cycles = 50000;

    RunPolicy policy;
    policy.max_attempts = 2;
    policy.faults = FaultPlan::parse("core.stall:1:1:stall");
    const BatchResult batch = runPointsChecked(specs, 1, policy);

    EXPECT_EQ(batch.outcomes[0].status, PointStatus::Ok);
    EXPECT_EQ(batch.outcomes[0].attempts, 2u);
    EXPECT_GT(batch.summaries[0].cycles.mean, 0.0);
}

} // namespace
} // namespace cmpsim
