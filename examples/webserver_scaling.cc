/**
 * @file
 * Scenario: you are sizing a CMP web server (the paper's zeus/apache
 * motivation) and want to know whether to spend the next design
 * iteration on prefetching, compression, or both, as the core count
 * grows. Reproduces the Figure 1 / Figure 12 methodology on any
 * workload.
 *
 *   ./webserver_scaling [workload] [max_cores]
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/core_api/cmp_system.h"

using namespace cmpsim;

namespace {

double
runCycles(const SystemConfig &cfg, const std::string &wl)
{
    CmpSystem sys(cfg, benchmarkParams(wl));
    sys.warmup(250000);
    sys.run(30000);
    return static_cast<double>(sys.cycles());
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string wl = argc > 1 ? argv[1] : "zeus";
    const unsigned max_cores =
        argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : 16;

    std::printf("Scaling %s: improvement over the same-size base "
                "system\n\n",
                wl.c_str());
    std::printf("%6s %12s %12s %14s\n", "cores", "prefetching",
                "compression", "both+adaptive");

    for (unsigned cores = 1; cores <= max_cores; cores *= 2) {
        const double base =
            runCycles(makeConfig(cores, 4, false, false, false, false),
                      wl);
        const double pref =
            runCycles(makeConfig(cores, 4, false, false, true, false),
                      wl);
        const double compr =
            runCycles(makeConfig(cores, 4, true, true, false, false),
                      wl);
        const double both =
            runCycles(makeConfig(cores, 4, true, true, true, true), wl);
        std::printf("%6u %+11.1f%% %+11.1f%% %+13.1f%%\n", cores,
                    (base / pref - 1) * 100, (base / compr - 1) * 100,
                    (base / both - 1) * 100);
    }

    std::printf("\nThe paper's conclusion should be visible here: "
                "prefetching's benefit\ndecays (or inverts) with core "
                "count while the compression-assisted\nconfigurations "
                "keep improving.\n");
    return 0;
}
