/**
 * @file
 * Scenario: watch the paper's adaptive prefetch throttle (Section 3)
 * operate. Runs jbb — the workload whose useless and harmful
 * prefetches cost 25% performance — and prints the shared-L2
 * saturating counter plus the useful/useless/harmful event counts
 * over time, side by side for the non-adaptive and adaptive systems.
 *
 *   ./adaptive_prefetch_demo [workload] [slices]
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/core_api/cmp_system.h"

using namespace cmpsim;

int
main(int argc, char **argv)
{
    const std::string wl = argc > 1 ? argv[1] : "jbb";
    const unsigned slices =
        argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : 12;

    std::printf("Adaptive prefetch throttling on %s\n\n", wl.c_str());

    SystemConfig pref_cfg = makeConfig(8, 4, false, false, true, false);
    SystemConfig adap_cfg = makeConfig(8, 4, false, false, true, true);
    CmpSystem pref(pref_cfg, benchmarkParams(wl));
    CmpSystem adap(adap_cfg, benchmarkParams(wl));
    pref.warmup(250000);
    adap.warmup(250000);

    std::printf("%-6s | %28s | %28s\n", "", "non-adaptive", "adaptive");
    std::printf("%-6s | %6s %6s %6s %6s | %6s %6s %6s %6s\n", "slice",
                "ctr", "useful", "useless", "harmful", "ctr", "useful",
                "useless", "harmful");

    std::uint64_t pref_cycles = 0, adap_cycles = 0;
    for (unsigned s = 0; s < slices; ++s) {
        pref.run(4000);
        adap.run(4000);
        pref_cycles += pref.cycles();
        adap_cycles += adap.cycles();
        std::printf("%-6u | %6u %6llu %6llu %6llu "
                    "| %6u %6llu %6llu %6llu\n",
                    s, pref.l2Adaptive().counterValue(),
                    static_cast<unsigned long long>(
                        pref.l2Adaptive().usefulCount()),
                    static_cast<unsigned long long>(
                        pref.l2Adaptive().uselessCount()),
                    static_cast<unsigned long long>(
                        pref.l2Adaptive().harmfulCount()),
                    adap.l2Adaptive().counterValue(),
                    static_cast<unsigned long long>(
                        adap.l2Adaptive().usefulCount()),
                    static_cast<unsigned long long>(
                        adap.l2Adaptive().uselessCount()),
                    static_cast<unsigned long long>(
                        adap.l2Adaptive().harmfulCount()));
    }

    std::printf("\ntotal cycles: non-adaptive %llu, adaptive %llu "
                "(%+.1f%%)\n",
                static_cast<unsigned long long>(pref_cycles),
                static_cast<unsigned long long>(adap_cycles),
                (static_cast<double>(pref_cycles) /
                     static_cast<double>(adap_cycles) -
                 1) * 100);
    std::printf("\nThe non-adaptive counter stays pinned at max (it is "
                "ignored);\nthe adaptive one sinks as useless/harmful "
                "evidence accumulates,\nthrottling the startup burst "
                "from 25 prefetches downward.\n");
    return 0;
}
