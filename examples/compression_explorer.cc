/**
 * @file
 * Scenario: explore how FPC and BDI compress real bytes. Feed the
 * tool a file (it is chunked into 64-byte cache lines) or let it
 * sweep the built-in workload value profiles, and it reports the
 * segment-size histograms, compression ratios, and what that would
 * mean for the paper's compressed L2 (effective capacity) and link
 * (flits per line).
 *
 *   ./compression_explorer [path/to/file]
 */

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "src/compression/bdi.h"
#include "src/compression/fpc.h"
#include "src/workload/workload_params.h"

using namespace cmpsim;

namespace {

struct Stats
{
    std::vector<std::uint64_t> hist = std::vector<std::uint64_t>(9, 0);
    std::uint64_t lines = 0;
    std::uint64_t segments = 0;

    void
    add(unsigned segs)
    {
        ++hist[segs];
        ++lines;
        segments += segs;
    }

    double
    ratio() const
    {
        return lines == 0 ? 1.0
                          : static_cast<double>(lines) * 8.0 /
                                static_cast<double>(segments);
    }
};

void
report(const char *title, const Stats &fpc, const Stats &bdi)
{
    std::printf("--- %s (%llu lines) ---\n", title,
                static_cast<unsigned long long>(fpc.lines));
    std::printf("  segments:");
    for (int s = 1; s <= 8; ++s)
        std::printf(" %d:%4.1f%%", s,
                    100.0 * static_cast<double>(fpc.hist[s]) /
                        static_cast<double>(fpc.lines));
    std::printf("  (FPC)\n");
    std::printf("  FPC ratio %.2fx | BDI ratio %.2fx\n", fpc.ratio(),
                bdi.ratio());
    std::printf("  -> compressed L2 effective capacity ~%.1f MB of 4; "
                "link data flits/line %.1f of 8\n\n",
                std::min(8.0, 4.0 * fpc.ratio()),
                8.0 / fpc.ratio());
}

} // namespace

int
main(int argc, char **argv)
{
    FpcCompressor fpc;
    BdiCompressor bdi;

    if (argc > 1) {
        std::ifstream in(argv[1], std::ios::binary);
        if (!in) {
            std::fprintf(stderr, "cannot open %s\n", argv[1]);
            return 1;
        }
        Stats sf, sb;
        LineData line{};
        while (in.read(reinterpret_cast<char *>(line.data()),
                       kLineBytes)) {
            sf.add(fpc.compress(line).segments);
            sb.add(bdi.compress(line).segments);
        }
        if (sf.lines == 0) {
            std::fprintf(stderr, "file shorter than one line\n");
            return 1;
        }
        report(argv[1], sf, sb);
        return 0;
    }

    // No file: sweep the paper workloads' value profiles.
    std::printf("No file given; compressing the synthetic value "
                "profiles of the paper's workloads.\n\n");
    for (const auto &name : benchmarkNames()) {
        const auto params = benchmarkParams(name);
        ValueGenerator gen(params.values);
        Random rng(11);
        Stats sf, sb;
        for (int i = 0; i < 4000; ++i) {
            const LineData line = gen.generate(rng);
            sf.add(fpc.compress(line).segments);
            sb.add(bdi.compress(line).segments);
        }
        report(name.c_str(), sf, sb);
    }
    return 0;
}
