/**
 * @file
 * Quickstart: build the paper's 8-core CMP with compression and
 * adaptive prefetching, run the zeus workload, and print the headline
 * numbers. This is the smallest complete use of the cmpsim public
 * API (CmpSystem + SystemConfig + the workload registry).
 *
 *   ./quickstart [workload] [scale]
 */

#include <cstdio>
#include <cstdlib>

#include "src/core_api/cmp_system.h"

using namespace cmpsim;

int
main(int argc, char **argv)
{
    const std::string workload = argc > 1 ? argv[1] : "zeus";
    const unsigned scale =
        argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : 4;

    std::printf("cmpsim quickstart: %s on an 8-core CMP (scale %u -> "
                "%u KB L2)\n\n",
                workload.c_str(), scale, 4096 / scale);

    // Two systems: the base machine and the paper's full proposal
    // (cache + link compression with adaptive prefetching).
    SystemConfig base_cfg =
        makeConfig(8, scale, false, false, false, false);
    SystemConfig full_cfg = makeConfig(8, scale, true, true, true, true);

    CmpSystem base(base_cfg, benchmarkParams(workload));
    base.warmup(300000);
    base.run(40000);

    CmpSystem full(full_cfg, benchmarkParams(workload));
    full.warmup(300000);
    full.run(40000);

    auto report = [](const char *name, CmpSystem &sys) {
        std::printf("%-22s %10llu cycles, IPC %.2f, %.1f GB/s off-chip"
                    ", L2 misses %llu\n",
                    name,
                    static_cast<unsigned long long>(sys.cycles()),
                    sys.ipc(), sys.bandwidthGBps(),
                    static_cast<unsigned long long>(
                        sys.stats().counter("l2.demand_misses")));
    };
    report("base system:", base);
    report("compression+adaptive:", full);

    const double speedup = static_cast<double>(base.cycles()) /
                           static_cast<double>(full.cycles());
    std::printf("\nspeedup: %.2fx (%+.1f%%)\n", speedup,
                (speedup - 1) * 100);
    std::printf("L2 compression ratio: %.2f\n", full.compressionRatio());
    std::printf("adaptive L2 startup budget ended at %u of 25\n",
                full.l2Adaptive().counterValue());
    return 0;
}
