/**
 * @file
 * Checker registry and analysis driver for cmpsim_analyze.
 *
 * A Checker inspects lexed token streams (lexer.h) and reports
 * Findings. Two hooks:
 *
 *  - checkFile():   per-file scans (banned tokens, scoped-binding
 *                   analyses);
 *  - checkCorpus(): cross-file invariants that need the whole
 *                   analyzed set plus repo context (env-knob drift
 *                   against README, fault-site coverage in tests and
 *                   DESIGN.md).
 *
 * Suppression contract: a finding of check `<id>` at line L is
 * suppressed by a `// analyze-ok: <id> <reason>` comment on line L
 * (trailing) or on line L-1 (a standalone comment above). The reason
 * is mandatory — a suppression without one, or naming an unknown
 * check id, is itself a finding (check id "suppression"). This keeps
 * every silenced hazard carrying a written justification in the
 * source, greppable at the point of risk.
 *
 * Adding a checker: implement the interface in a new checks_*.cc,
 * declare its factory in checker.cc's allCheckers() (explicit
 * registration — static-initializer tricks get dropped by the
 * archiver), and add positive/negative snippet tests to
 * tests/analyze_test.cc. DESIGN.md §11 documents the catalogue.
 */

#ifndef CMPSIM_ANALYZE_CHECKER_H
#define CMPSIM_ANALYZE_CHECKER_H

#include <memory>
#include <string>
#include <vector>

#include "tools/analyze/lexer.h"

namespace cmpsim::analyze {

struct Finding
{
    std::string check;   ///< check id, e.g. "nondet-source"
    std::string file;    ///< repo-relative path
    int line = 0;        ///< 1-based
    std::string message; ///< one-line human-readable statement
};

/** All analyzed files. */
struct Corpus
{
    std::vector<SourceFile> files;
};

/**
 * Repo context the cross-file checkers match against. The driver
 * loads these from --root; tests inject synthetic content directly.
 * An empty string means "not available": the dependent cross-check is
 * skipped rather than reporting the whole repo missing.
 */
struct AnalysisContext
{
    std::string readme;     ///< README.md (env-knob table)
    std::string design;     ///< DESIGN.md (§8 fault sites)
    std::string cmake;      ///< top-level CMakeLists.txt (build knobs)
    std::string tests_blob; ///< all tests/*.cc concatenated
};

class Checker
{
  public:
    virtual ~Checker() = default;

    virtual const char *id() const = 0;
    virtual const char *description() const = 0;

    virtual void checkFile(const SourceFile &file,
                           const AnalysisContext &ctx,
                           std::vector<Finding> &out) const
    {
        (void)file;
        (void)ctx;
        (void)out;
    }

    virtual void checkCorpus(const Corpus &corpus,
                             const AnalysisContext &ctx,
                             std::vector<Finding> &out) const
    {
        (void)corpus;
        (void)ctx;
        (void)out;
    }
};

/** The shipped checkers, in fixed report order. */
const std::vector<std::unique_ptr<Checker>> &allCheckers();

struct SuppressedFinding
{
    std::string check;
    std::string file;
    int line = 0;
    std::string reason;
};

struct AnalysisResult
{
    std::vector<Finding> findings; ///< unsuppressed, sorted
    std::vector<SuppressedFinding> suppressed;
    std::size_t files_scanned = 0;
};

/**
 * Run every registered checker over @p corpus, apply suppressions,
 * and validate suppression comments themselves. Findings are sorted
 * by (file, line, check) so output is stable across platforms.
 */
AnalysisResult runAnalysis(const Corpus &corpus,
                           const AnalysisContext &ctx);

/** Render @p result as the stable cmpsim.analyze.v1 JSON document. */
std::string toJson(const AnalysisResult &result);

// --- shared token helpers (used by several checkers) ---------------

/** True when tokens[i] is an Ident with this exact text. */
bool isIdent(const std::vector<Token> &toks, std::size_t i,
             const char *text);

/** True when tokens[i] is a Punct with this exact text. */
bool isPunct(const std::vector<Token> &toks, std::size_t i,
             const char *text);

/** Index of the matching closer for the opener at tokens[i]
 *  (e.g. '(' -> ')'); tokens.size() when unbalanced. */
std::size_t matchForward(const std::vector<Token> &toks, std::size_t i,
                         const char *open, const char *close);

} // namespace cmpsim::analyze

#endif // CMPSIM_ANALYZE_CHECKER_H
