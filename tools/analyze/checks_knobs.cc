/**
 * @file
 * knob-registry: every CMPSIM_* environment knob the code reads must
 * be documented, and every documented knob must still exist — knob
 * drift fails the scan instead of rotting silently.
 *
 * Forward check: each `getenv("CMPSIM_*")` / `envUint64Or("CMPSIM_*")`
 * site in src/ or tools/ needs a matching `| `CMPSIM_*` |` row in
 * README.md's knob tables.
 *
 * Reverse check: each documented CMPSIM_* row must be read somewhere
 * in the analyzed src//tools/ files, or appear in the top-level
 * CMakeLists.txt (build-time knobs like CMPSIM_SANITIZE / CMPSIM_PROF
 * are CMake options, not getenv reads).
 *
 * Config-coverage check: knobs that land inside SystemConfig must be
 * guarded by SystemConfig::validate(), evidenced by a "config.<domain>"
 * ConfigError context string somewhere in the corpus. The knob->domain
 * map below is the one piece of checker-maintained knowledge: extend
 * it when a new env knob starts populating SystemConfig fields.
 */

#include <map>
#include <set>
#include <sstream>
#include <string>

#include "tools/analyze/checker.h"

namespace cmpsim::analyze {

namespace {

struct KnobSite
{
    std::string knob;
    std::string file;
    int line = 0;
};

/** Env knobs that populate SystemConfig -> the validate() context
 *  prefix that must guard them. */
const std::map<std::string, std::string> &
configCoverage()
{
    static const std::map<std::string, std::string> m = {
        {"CMPSIM_DRAM", "config.dram"},
        {"CMPSIM_LANES", "config.lanes"},
        {"CMPSIM_CPISTACK", "config.cpistack"},
        {"CMPSIM_CKPT", "config.ckpt"},
        {"CMPSIM_RESTORE", "config.restore"},
        {"CMPSIM_SAMPLING", "config.sampling"},
    };
    return m;
}

bool
startsWith(const std::string &s, const char *prefix)
{
    return s.rfind(prefix, 0) == 0;
}

class KnobRegistryChecker final : public Checker
{
  public:
    const char *id() const override { return "knob-registry"; }
    const char *description() const override
    {
        return "CMPSIM_* env knobs vs README table and "
               "SystemConfig::validate coverage";
    }

    void checkCorpus(const Corpus &corpus, const AnalysisContext &ctx,
                     std::vector<Finding> &out) const override
    {
        if (ctx.readme.empty())
            return; // no registry to check against

        // Code side: knob string literals fed to the env accessors.
        std::vector<KnobSite> sites;
        std::set<std::string> read_knobs;
        std::set<std::string> string_pool; // every literal in corpus
        for (const SourceFile &f : corpus.files) {
            const bool scoped = f.under("src") || f.under("tools");
            const auto &t = f.tokens;
            for (std::size_t i = 0; i < t.size(); ++i) {
                if (t[i].kind == TokKind::String)
                    string_pool.insert(t[i].text);
                if (!scoped)
                    continue;
                if ((isIdent(t, i, "getenv") ||
                     isIdent(t, i, "envUint64Or")) &&
                    isPunct(t, i + 1, "(") && i + 2 < t.size() &&
                    t[i + 2].kind == TokKind::String &&
                    startsWith(t[i + 2].text, "CMPSIM_")) {
                    sites.push_back(
                        {t[i + 2].text, f.path, t[i + 2].line});
                    read_knobs.insert(t[i + 2].text);
                }
            }
        }

        // README side: `| `CMPSIM_X` |` table rows.
        std::map<std::string, int> documented; // knob -> line
        parseReadmeRows(ctx.readme, documented);

        for (const KnobSite &s : sites) {
            if (documented.count(s.knob) == 0) {
                out.push_back(
                    {id(), s.file, s.line,
                     "env knob " + s.knob +
                         " is read here but has no row in README's "
                         "environment-knob table"});
            }
        }

        for (const auto &[knob, line] : documented) {
            if (read_knobs.count(knob) != 0)
                continue;
            if (!ctx.cmake.empty() &&
                ctx.cmake.find(knob) != std::string::npos)
                continue; // build-time knob (CMake option)
            out.push_back(
                {id(), "README.md", line,
                 "documented knob " + knob +
                     " is read nowhere in the analyzed src//tools/ "
                     "files and is not a CMake build knob — stale "
                     "row or missing implementation"});
        }

        // Config coverage: a validate() context string must exist for
        // knobs that populate SystemConfig.
        for (const KnobSite &s : sites) {
            const auto it = configCoverage().find(s.knob);
            if (it == configCoverage().end())
                continue;
            bool covered = false;
            for (const std::string &lit : string_pool) {
                if (startsWith(lit, it->second.c_str())) {
                    covered = true;
                    break;
                }
            }
            if (!covered) {
                out.push_back(
                    {id(), s.file, s.line,
                     s.knob + " populates SystemConfig but no \"" +
                         it->second +
                         "*\" ConfigError context exists — "
                         "SystemConfig::validate() does not guard "
                         "it"});
            }
        }
    }

  private:
    static void
    parseReadmeRows(const std::string &readme,
                    std::map<std::string, int> &documented)
    {
        std::istringstream in(readme);
        std::string line;
        int lineno = 0;
        while (std::getline(in, line)) {
            ++lineno;
            std::size_t p = line.find_first_not_of(" \t");
            if (p == std::string::npos || line[p] != '|')
                continue;
            p = line.find_first_not_of(" \t", p + 1);
            if (p == std::string::npos || line[p] != '`')
                continue;
            const std::size_t end = line.find('`', p + 1);
            if (end == std::string::npos)
                continue;
            const std::string cell = line.substr(p + 1, end - p - 1);
            if (startsWith(cell, "CMPSIM_") &&
                documented.count(cell) == 0)
                documented[cell] = lineno;
        }
    }
};

} // namespace

std::unique_ptr<Checker>
makeKnobRegistryChecker()
{
    return std::make_unique<KnobRegistryChecker>();
}

} // namespace cmpsim::analyze
