/**
 * @file
 * Determinism checkers: every simulated result must be a pure
 * function of (config, seed) — DESIGN.md §6's reproducibility gate is
 * only as strong as the absence of ambient entropy.
 *
 * nondet-source: bans the raw randomness / wall-clock identifiers in
 * simulator code (all randomness must flow from the seeded Random
 * class). Token-level successor of tools/lint.sh's grep ban-list: a
 * banned name inside a comment or string can no longer fire, and a
 * banned call split across lines no longer hides.
 *
 * unordered-iter: flags iteration over std::unordered_map/set in
 * src/. Iteration order is implementation-defined, so any loop whose
 * body feeds stats, fingerprints, or output silently ties results to
 * the standard library's hash layout. Order-independent loops
 * (integer sums, existence scans) are suppressed with a written
 * reason; everything else must iterate in sorted order.
 */

#include <set>
#include <string>

#include "tools/analyze/checker.h"

namespace cmpsim::analyze {

namespace {

// ------------------------------------------------------ nondet-source

/** Names banned when called: ambient time / libc randomness. */
bool
bannedCall(const std::string &name)
{
    return name == "rand" || name == "srand" || name == "time" ||
           name == "gettimeofday" || name == "clock_gettime";
}

/** Names banned on sight: unseeded RNG engine / entropy types. */
bool
bannedType(const std::string &name)
{
    return name == "random_device" || name == "mt19937" ||
           name == "mt19937_64" || name == "minstd_rand" ||
           name == "default_random_engine";
}

class NondetSourceChecker final : public Checker
{
  public:
    const char *id() const override { return "nondet-source"; }
    const char *description() const override
    {
        return "banned nondeterminism sources (rand/time/etc.) in "
               "simulator code";
    }

    void checkFile(const SourceFile &f, const AnalysisContext &,
                   std::vector<Finding> &out) const override
    {
        const auto &t = f.tokens;
        for (std::size_t i = 0; i < t.size(); ++i) {
            if (t[i].kind != TokKind::Ident)
                continue;
            const bool member_access =
                i > 0 && (isPunct(t, i - 1, ".") ||
                          isPunct(t, i - 1, "->"));
            // `X::time(...)` is only banned when X is std; any other
            // qualifier names a user function.
            const bool qualified = i > 0 && isPunct(t, i - 1, "::");
            const bool std_qualified =
                qualified && i > 1 && isIdent(t, i - 2, "std");

            if (bannedType(t[i].text)) {
                if (member_access || (qualified && !std_qualified))
                    continue;
                out.push_back(
                    {id(), f.path, t[i].line,
                     "banned nondeterminism source 'std::" + t[i].text +
                         "': all randomness must flow from the seeded "
                         "Random class (src/common/random.h)"});
                continue;
            }
            if (bannedCall(t[i].text) && isPunct(t, i + 1, "(")) {
                if (member_access || (qualified && !std_qualified))
                    continue;
                out.push_back(
                    {id(), f.path, t[i].line,
                     "banned call '" + t[i].text +
                         "()': wall-clock and libc randomness break "
                         "the (config, seed) -> result guarantee"});
            }
        }
    }
};

// ------------------------------------------------------ unordered-iter

/** Skip a template argument list: @p i indexes the opening '<'.
 *  Returns the index just past the closing '>' (treating '>>' as two
 *  closers), or npos-like tokens.size() when it isn't one. */
std::size_t
skipAngles(const std::vector<Token> &t, std::size_t i)
{
    int depth = 0;
    for (std::size_t k = i; k < t.size(); ++k) {
        if (t[k].kind != TokKind::Punct) {
            continue;
        } else if (t[k].text == "<") {
            ++depth;
        } else if (t[k].text == ">") {
            if (--depth == 0)
                return k + 1;
        } else if (t[k].text == ">>") {
            depth -= 2;
            if (depth <= 0)
                return k + 1;
        } else if (t[k].text == ";" || t[k].text == "{" ||
                   t[k].text == "}") {
            return t.size(); // not a template argument list
        }
    }
    return t.size();
}

class UnorderedIterChecker final : public Checker
{
  public:
    const char *id() const override { return "unordered-iter"; }
    const char *description() const override
    {
        return "iteration over std::unordered_map/set in src/ "
               "(implementation-defined order)";
    }

    void checkCorpus(const Corpus &corpus, const AnalysisContext &,
                     std::vector<Finding> &out) const override
    {
        // Pass 1 (all analyzed files, headers included): names
        // declared with an unordered container type — variables,
        // members, parameters, and functions returning one.
        std::set<std::string> names;
        for (const SourceFile &f : corpus.files)
            collectNames(f, names);
        if (names.empty())
            return;

        // Pass 2 (src/ only, per the invariant's scope): range-for
        // expressions and .begin() calls that touch a collected name.
        for (const SourceFile &f : corpus.files) {
            if (!f.under("src"))
                continue;
            scanIteration(f, names, out);
        }
    }

  private:
    static void
    collectNames(const SourceFile &f, std::set<std::string> &names)
    {
        const auto &t = f.tokens;
        for (std::size_t i = 0; i < t.size(); ++i) {
            if (!isIdent(t, i, "unordered_map") &&
                !isIdent(t, i, "unordered_set"))
                continue;
            if (!isPunct(t, i + 1, "<"))
                continue;
            std::size_t p = skipAngles(t, i + 1);
            while (p < t.size() &&
                   (isPunct(t, p, "&") || isPunct(t, p, "*") ||
                    isIdent(t, p, "const")))
                ++p;
            if (p < t.size() && t[p].kind == TokKind::Ident)
                names.insert(t[p].text);
        }
    }

    void
    scanIteration(const SourceFile &f, const std::set<std::string> &names,
                  std::vector<Finding> &out) const
    {
        const auto &t = f.tokens;
        for (std::size_t i = 0; i < t.size(); ++i) {
            // name.begin( / name.cbegin( — explicit iterator loops
            // and <algorithm> calls.
            if (t[i].kind == TokKind::Ident && names.count(t[i].text) &&
                isPunct(t, i + 1, ".") &&
                (isIdent(t, i + 2, "begin") ||
                 isIdent(t, i + 2, "cbegin")) &&
                isPunct(t, i + 3, "(")) {
                report(f, t[i], out);
                continue;
            }
            // Range-for: for ( decl : expr ) with a collected name
            // anywhere in expr.
            if (!isIdent(t, i, "for") || !isPunct(t, i + 1, "("))
                continue;
            const std::size_t close = matchForward(t, i + 1, "(", ")");
            std::size_t colon = t.size();
            int depth = 0;
            for (std::size_t k = i + 1; k < close; ++k) {
                if (isPunct(t, k, "(") || isPunct(t, k, "[") ||
                    isPunct(t, k, "{"))
                    ++depth;
                else if (isPunct(t, k, ")") || isPunct(t, k, "]") ||
                         isPunct(t, k, "}"))
                    --depth;
                else if (depth == 1 && isPunct(t, k, ":")) {
                    colon = k;
                    break;
                }
            }
            if (colon == t.size())
                continue;
            int expr_depth = 0;
            for (std::size_t k = colon + 1; k < close; ++k) {
                if (isPunct(t, k, "(") || isPunct(t, k, "[") ||
                    isPunct(t, k, "{")) {
                    ++expr_depth;
                    continue;
                }
                if (isPunct(t, k, ")") || isPunct(t, k, "]") ||
                    isPunct(t, k, "}")) {
                    --expr_depth;
                    continue;
                }
                if (t[k].kind != TokKind::Ident ||
                    names.count(t[k].text) == 0)
                    continue;
                // A name nested inside a call's argument list
                // (`sortedKeys(m)`) is being transformed, not
                // iterated — the sorted-copy idiom this check asks
                // for. Only the top level of the range expression
                // decides what the loop walks.
                if (expr_depth != 0)
                    continue;
                // Likewise a receiver position (`m.waiters`) says
                // nothing about what is iterated — only the terminal
                // member / call decides. `obj.demand()` still matches
                // via the member name.
                if (isPunct(t, k + 1, ".") || isPunct(t, k + 1, "->"))
                    continue;
                report(f, t[k], out);
                break;
            }
        }
    }

    void
    report(const SourceFile &f, const Token &tok,
           std::vector<Finding> &out) const
    {
        out.push_back(
            {id(), f.path, tok.line,
             "iteration over unordered container '" + tok.text +
                 "': order is implementation-defined; iterate a "
                 "sorted copy if results feed stats/fingerprints/"
                 "output, or suppress with the order-independence "
                 "argument"});
    }
};

} // namespace

std::unique_ptr<Checker>
makeNondetSourceChecker()
{
    return std::make_unique<NondetSourceChecker>();
}

std::unique_ptr<Checker>
makeUnorderedIterChecker()
{
    return std::make_unique<UnorderedIterChecker>();
}

} // namespace cmpsim::analyze
