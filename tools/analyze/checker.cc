#include "tools/analyze/checker.h"

#include <algorithm>
#include <cstdio>
#include <set>

namespace cmpsim::analyze {

// Factories live in the checks_*.cc files; explicit registration
// keeps link order irrelevant and report order fixed.
std::unique_ptr<Checker> makeNondetSourceChecker();
std::unique_ptr<Checker> makeUnorderedIterChecker();
std::unique_ptr<Checker> makeTagEntryChecker();
std::unique_ptr<Checker> makeKnobRegistryChecker();
std::unique_ptr<Checker> makeFaultSiteChecker();
std::unique_ptr<Checker> makeSharedStateChecker();

const std::vector<std::unique_ptr<Checker>> &
allCheckers()
{
    static const std::vector<std::unique_ptr<Checker>> checkers = [] {
        std::vector<std::unique_ptr<Checker>> v;
        v.push_back(makeNondetSourceChecker());
        v.push_back(makeUnorderedIterChecker());
        v.push_back(makeTagEntryChecker());
        v.push_back(makeKnobRegistryChecker());
        v.push_back(makeFaultSiteChecker());
        v.push_back(makeSharedStateChecker());
        return v;
    }();
    return checkers;
}

bool
isIdent(const std::vector<Token> &toks, std::size_t i, const char *text)
{
    return i < toks.size() && toks[i].kind == TokKind::Ident &&
           toks[i].text == text;
}

bool
isPunct(const std::vector<Token> &toks, std::size_t i, const char *text)
{
    return i < toks.size() && toks[i].kind == TokKind::Punct &&
           toks[i].text == text;
}

std::size_t
matchForward(const std::vector<Token> &toks, std::size_t i,
             const char *open, const char *close)
{
    int depth = 0;
    for (std::size_t k = i; k < toks.size(); ++k) {
        if (isPunct(toks, k, open))
            ++depth;
        else if (isPunct(toks, k, close) && --depth == 0)
            return k;
    }
    return toks.size();
}

AnalysisResult
runAnalysis(const Corpus &corpus, const AnalysisContext &ctx)
{
    AnalysisResult result;
    result.files_scanned = corpus.files.size();

    std::vector<Finding> raw;
    for (const auto &checker : allCheckers()) {
        for (const SourceFile &f : corpus.files)
            checker->checkFile(f, ctx, raw);
        checker->checkCorpus(corpus, ctx, raw);
    }

    std::set<std::string> known_ids{"suppression"};
    for (const auto &checker : allCheckers())
        known_ids.insert(checker->id());

    // Validate the suppression comments themselves: unknown check id
    // or missing reason is a finding, so a typo'd suppression cannot
    // silently keep "suppressing" nothing.
    for (const SourceFile &f : corpus.files) {
        for (const Suppression &s : f.suppressions) {
            if (known_ids.count(s.check_id) == 0) {
                raw.push_back({"suppression", f.path, s.line,
                               "analyze-ok names unknown check '" +
                                   s.check_id + "'"});
            } else if (s.reason.empty()) {
                raw.push_back({"suppression", f.path, s.line,
                               "analyze-ok for '" + s.check_id +
                                   "' carries no reason"});
            }
        }
    }

    // Apply suppressions: same line or the line directly above.
    for (Finding &fd : raw) {
        const SourceFile *file = nullptr;
        for (const SourceFile &f : corpus.files) {
            if (f.path == fd.file) {
                file = &f;
                break;
            }
        }
        bool drop = false;
        if (file != nullptr && fd.check != "suppression") {
            for (const Suppression &s : file->suppressions) {
                if (s.check_id == fd.check && !s.reason.empty() &&
                    (s.line == fd.line || s.line == fd.line - 1)) {
                    s.used = true;
                    result.suppressed.push_back(
                        {fd.check, fd.file, fd.line, s.reason});
                    drop = true;
                    break;
                }
            }
        }
        if (!drop)
            result.findings.push_back(std::move(fd));
    }

    auto byPlace = [](const auto &a, const auto &b) {
        if (a.file != b.file)
            return a.file < b.file;
        if (a.line != b.line)
            return a.line < b.line;
        return a.check < b.check;
    };
    std::sort(result.findings.begin(), result.findings.end(), byPlace);
    std::sort(result.suppressed.begin(), result.suppressed.end(),
              byPlace);
    return result;
}

namespace {

void
appendJsonString(std::string &out, const std::string &s)
{
    out.push_back('"');
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    out.push_back('"');
}

} // namespace

std::string
toJson(const AnalysisResult &result)
{
    std::string out;
    out += "{\n  \"schema\": \"cmpsim.analyze.v1\",\n";
    out += "  \"files_scanned\": " +
           std::to_string(result.files_scanned) + ",\n";

    out += "  \"findings\": [";
    for (std::size_t i = 0; i < result.findings.size(); ++i) {
        const Finding &f = result.findings[i];
        out += i == 0 ? "\n" : ",\n";
        out += "    {\"check\": ";
        appendJsonString(out, f.check);
        out += ", \"file\": ";
        appendJsonString(out, f.file);
        out += ", \"line\": " + std::to_string(f.line);
        out += ", \"message\": ";
        appendJsonString(out, f.message);
        out += "}";
    }
    out += result.findings.empty() ? "],\n" : "\n  ],\n";

    out += "  \"suppressed\": [";
    for (std::size_t i = 0; i < result.suppressed.size(); ++i) {
        const SuppressedFinding &s = result.suppressed[i];
        out += i == 0 ? "\n" : ",\n";
        out += "    {\"check\": ";
        appendJsonString(out, s.check);
        out += ", \"file\": ";
        appendJsonString(out, s.file);
        out += ", \"line\": " + std::to_string(s.line);
        out += ", \"reason\": ";
        appendJsonString(out, s.reason);
        out += "}";
    }
    out += result.suppressed.empty() ? "]\n" : "\n  ]\n";
    out += "}\n";
    return out;
}

} // namespace cmpsim::analyze
