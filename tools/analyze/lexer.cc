#include "tools/analyze/lexer.h"

#include <cctype>
#include <cstddef>

namespace cmpsim::analyze {

namespace {

constexpr const char *kMarker = "analyze-ok:";

bool
isIdentStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

std::string
trim(const std::string &s)
{
    std::size_t b = 0, e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

/** Check-id charset: lowercase kebab-case, like the shipped ids.
 *  Grammar examples in documentation comments (`<check-id>`, `...`)
 *  fall outside it and are not collected as suppressions; a typo'd
 *  but well-formed id still reaches the unknown-id validation in
 *  runAnalysis(). */
bool
plausibleCheckId(const std::string &id)
{
    if (id.empty())
        return false;
    for (char c : id) {
        if (!(std::islower(static_cast<unsigned char>(c)) ||
              std::isdigit(static_cast<unsigned char>(c)) || c == '-'))
            return false;
    }
    return true;
}

/** Parse an analyze-ok comment body into a Suppression, if present. */
void
collectSuppression(const std::string &comment, int line, SourceFile &out)
{
    const std::size_t at = comment.find(kMarker);
    if (at == std::string::npos)
        return;
    const std::string body =
        trim(comment.substr(at + std::string(kMarker).size()));
    Suppression s;
    s.line = line;
    const std::size_t sp = body.find_first_of(" \t");
    if (sp == std::string::npos) {
        s.check_id = body;
    } else {
        s.check_id = body.substr(0, sp);
        s.reason = trim(body.substr(sp + 1));
    }
    if (!plausibleCheckId(s.check_id))
        return;
    out.suppressions.push_back(std::move(s));
}

/** Multi-character operators, longest first within a leading char. */
const char *const kOps[] = {
    "<<=", ">>=", "...", "->*", "<=>", "::", "->", "==", "!=", "<=",
    ">=",  "&&",  "||",  "<<",  ">>",  "+=", "-=", "*=", "/=", "%=",
    "&=",  "|=",  "^=",  "++",  "--",  ".*",
};

} // namespace

bool
SourceFile::under(const std::string &dir) const
{
    return path.size() > dir.size() && path.compare(0, dir.size(), dir) == 0 &&
           path[dir.size()] == '/';
}

SourceFile
lexSource(const std::string &path, const std::string &text)
{
    SourceFile out;
    out.path = path;

    const std::size_t n = text.size();
    std::size_t i = 0;
    int line = 1;

    auto advance = [&](std::size_t count) {
        for (std::size_t k = 0; k < count && i < n; ++k, ++i) {
            if (text[i] == '\n')
                ++line;
        }
    };

    while (i < n) {
        const char c = text[i];

        if (c == '\n' || std::isspace(static_cast<unsigned char>(c))) {
            advance(1);
            continue;
        }

        // Line comment (may carry a suppression).
        if (c == '/' && i + 1 < n && text[i + 1] == '/') {
            std::size_t end = text.find('\n', i);
            if (end == std::string::npos)
                end = n;
            collectSuppression(text.substr(i + 2, end - i - 2), line, out);
            advance(end - i);
            continue;
        }

        // Block comment: scan each contained line for suppressions so
        // /* analyze-ok: ... */ works too.
        if (c == '/' && i + 1 < n && text[i + 1] == '*') {
            std::size_t end = text.find("*/", i + 2);
            if (end == std::string::npos)
                end = n;
            else
                end += 2;
            std::size_t seg = i + 2;
            int seg_line = line;
            while (seg < end) {
                std::size_t nl = text.find('\n', seg);
                if (nl == std::string::npos || nl > end)
                    nl = end;
                collectSuppression(text.substr(seg, nl - seg), seg_line,
                                   out);
                ++seg_line;
                seg = nl + 1;
            }
            advance(end - i);
            continue;
        }

        // Raw string literal: R"delim( ... )delim".
        if (c == 'R' && i + 1 < n && text[i + 1] == '"') {
            std::size_t p = i + 2;
            std::string delim;
            while (p < n && text[p] != '(' && delim.size() < 16)
                delim.push_back(text[p++]);
            const std::string close = ")" + delim + "\"";
            std::size_t body = p < n ? p + 1 : n;
            std::size_t end = text.find(close, body);
            const int tok_line = line;
            std::string contents;
            if (end == std::string::npos) {
                contents = text.substr(body);
                end = n;
            } else {
                contents = text.substr(body, end - body);
                end += close.size();
            }
            out.tokens.push_back({TokKind::String, contents, tok_line});
            advance(end - i);
            continue;
        }

        // String / char literal with escapes.
        if (c == '"' || c == '\'') {
            const char quote = c;
            const int tok_line = line;
            std::size_t p = i + 1;
            std::string contents;
            while (p < n && text[p] != quote) {
                if (text[p] == '\\' && p + 1 < n) {
                    contents.push_back(text[p]);
                    contents.push_back(text[p + 1]);
                    p += 2;
                } else {
                    if (text[p] == '\n')
                        break; // unterminated: stop at the line end
                    contents.push_back(text[p]);
                    ++p;
                }
            }
            if (p < n && text[p] == quote)
                ++p;
            out.tokens.push_back(
                {quote == '"' ? TokKind::String : TokKind::Char,
                 std::move(contents), tok_line});
            advance(p - i);
            continue;
        }

        if (isIdentStart(c)) {
            std::size_t p = i + 1;
            while (p < n && isIdentChar(text[p]))
                ++p;
            out.tokens.push_back(
                {TokKind::Ident, text.substr(i, p - i), line});
            advance(p - i);
            continue;
        }

        if (std::isdigit(static_cast<unsigned char>(c))) {
            std::size_t p = i + 1;
            // Accept the superset: digits, hex letters, separators,
            // exponent signs. Checkers never inspect number bodies.
            while (p < n &&
                   (isIdentChar(text[p]) || text[p] == '\'' ||
                    text[p] == '.' ||
                    ((text[p] == '+' || text[p] == '-') &&
                     (text[p - 1] == 'e' || text[p - 1] == 'E' ||
                      text[p - 1] == 'p' || text[p - 1] == 'P'))))
                ++p;
            out.tokens.push_back(
                {TokKind::Number, text.substr(i, p - i), line});
            advance(p - i);
            continue;
        }

        // Preprocessor directives: skip to end of line (respecting
        // continuations) so `#include <sys/time.h>` cannot fire the
        // nondeterminism checker via the `time` path component.
        if (c == '#') {
            std::size_t p = i;
            while (p < n) {
                std::size_t nl = text.find('\n', p);
                if (nl == std::string::npos) {
                    p = n;
                    break;
                }
                std::size_t back = nl;
                while (back > p &&
                       std::isspace(static_cast<unsigned char>(
                           text[back - 1])) &&
                       text[back - 1] != '\n')
                    --back;
                if (back > p && text[back - 1] == '\\') {
                    p = nl + 1; // continued directive
                } else {
                    p = nl;
                    break;
                }
            }
            advance(p - i);
            continue;
        }

        // Multi-char operator?
        bool matched = false;
        for (const char *op : kOps) {
            const std::size_t len = std::char_traits<char>::length(op);
            if (i + len <= n && text.compare(i, len, op) == 0) {
                out.tokens.push_back({TokKind::Punct, op, line});
                advance(len);
                matched = true;
                break;
            }
        }
        if (matched)
            continue;

        out.tokens.push_back({TokKind::Punct, std::string(1, c), line});
        advance(1);
    }

    return out;
}

} // namespace cmpsim::analyze
