/**
 * @file
 * tagentry-stale: a `TagEntry *` obtained from DecoupledSet::find()
 * dangles across any call that reorders the set's entry vector —
 * touch(), insert(), resize(), invalidate() all rotate entries in
 * place (decoupled_set.h documents the hazard on touch()). The
 * supported idiom is find -> mutate -> re-find.
 *
 * Replaces tools/lint.sh's line-oriented awk heuristic with a real
 * scoped-binding analysis over the token stream:
 *
 *  - a binding is born at `TagEntry *p = ...` and dies when its brace
 *    scope closes;
 *  - any member-style or unqualified call to a reordering method
 *    marks every live binding stale (recording the call line);
 *  - a later use of a stale binding (`p->`, `p[`, or `*p` in
 *    expression position) is a finding, unless a reassignment
 *    `p = ...` (the re-find) intervened.
 *
 * The analysis is deliberately control-flow-insensitive and
 * receiver-type-blind (it cannot prove `other.insert()` touches a
 * different object), so it over-approximates toward findings — the
 * correct bias for a use-after-free class whose symptom is silently
 * skewed statistics.
 */

#include <string>
#include <vector>

#include "tools/analyze/checker.h"

namespace cmpsim::analyze {

namespace {

bool
reorderingMethod(const std::string &name)
{
    return name == "touch" || name == "insert" || name == "resize" ||
           name == "invalidate";
}

struct Binding
{
    std::string name;
    int decl_line = 0;
    int depth = 0;        ///< brace depth at declaration
    int stale_line = 0;   ///< 0 = fresh; else line of reordering call
};

class TagEntryChecker final : public Checker
{
  public:
    const char *id() const override { return "tagentry-stale"; }
    const char *description() const override
    {
        return "TagEntry* held across DecoupledSet "
               "touch()/insert()/resize()/invalidate()";
    }

    void checkFile(const SourceFile &f, const AnalysisContext &,
                   std::vector<Finding> &out) const override
    {
        const auto &t = f.tokens;
        std::vector<Binding> live;
        int depth = 0;

        for (std::size_t i = 0; i < t.size(); ++i) {
            if (isPunct(t, i, "{")) {
                ++depth;
                continue;
            }
            if (isPunct(t, i, "}")) {
                --depth;
                for (std::size_t b = live.size(); b-- > 0;) {
                    if (live[b].depth > depth)
                        live.erase(live.begin() +
                                   static_cast<std::ptrdiff_t>(b));
                }
                continue;
            }
            if (t[i].kind != TokKind::Ident)
                continue;

            // Birth: TagEntry *p = ...
            if (t[i].text == "TagEntry" && isPunct(t, i + 1, "*") &&
                i + 2 < t.size() && t[i + 2].kind == TokKind::Ident &&
                isPunct(t, i + 3, "=")) {
                Binding b;
                b.name = t[i + 2].text;
                b.decl_line = t[i + 2].line;
                b.depth = depth;
                // Replace a shadowed same-name binding.
                bool replaced = false;
                for (Binding &old : live) {
                    if (old.name == b.name) {
                        old = b;
                        replaced = true;
                        break;
                    }
                }
                if (!replaced)
                    live.push_back(b);
                i += 3;
                continue;
            }

            // Reordering call: .touch( / ->insert( / bare resize(.
            if (reorderingMethod(t[i].text) && isPunct(t, i + 1, "(")) {
                for (Binding &b : live) {
                    if (b.stale_line == 0)
                        b.stale_line = t[i].line;
                }
                continue;
            }

            // Reassignment (the re-find idiom) freshens the binding.
            // `p ==`/`p !=` are distinct tokens, so only plain `=`
            // matches here.
            Binding *bound = nullptr;
            for (Binding &b : live) {
                if (b.name == t[i].text) {
                    bound = &b;
                    break;
                }
            }
            if (bound == nullptr)
                continue;
            if (isPunct(t, i + 1, "=")) {
                bound->stale_line = 0;
                continue;
            }

            // Use of the pointer value: p-> , p[ , or *p in
            // expression position.
            const bool deref_use =
                isPunct(t, i + 1, "->") || isPunct(t, i + 1, "[") ||
                (i > 0 && isPunct(t, i - 1, "*") && i > 1 &&
                 (isPunct(t, i - 2, "(") || isPunct(t, i - 2, ",") ||
                  isPunct(t, i - 2, "=") || isPunct(t, i - 2, ";") ||
                  isIdent(t, i - 2, "return")));
            if (deref_use && bound->stale_line != 0) {
                out.push_back(
                    {id(), f.path, t[i].line,
                     "'" + bound->name + "' (TagEntry* from line " +
                         std::to_string(bound->decl_line) +
                         ") used after a reordering call on line " +
                         std::to_string(bound->stale_line) +
                         " invalidated it; re-find() before use"});
                // One report per staleness episode: freshen so a
                // long function doesn't repeat the same root cause.
                bound->stale_line = 0;
            }
        }
    }
};

} // namespace

std::unique_ptr<Checker>
makeTagEntryChecker()
{
    return std::make_unique<TagEntryChecker>();
}

} // namespace cmpsim::analyze
