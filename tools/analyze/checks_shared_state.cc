/**
 * @file
 * shared-state: mutable namespace-scope globals and non-const
 * statics in the simulation-kernel directories (src/sim, src/cache,
 * src/dram). The determinism guarantee rests on DESIGN.md section
 * 7's ownership model — one CmpSystem owns all of its state — and
 * the planned sharded event kernel will run lanes of one simulation
 * concurrently, so hidden cross-lane state in these directories is
 * the first thing that refactor would trip over. Every such variable
 * must be const/constexpr, std::atomic, or carry an explicit
 * suppression arguing why it is safe (e.g. thread_local fault-probe
 * arming, which is scoped per worker by design).
 *
 * Two scans:
 *  - declaration-keyword scan: `static` / `thread_local` declarations
 *    anywhere in the file that declare a mutable object (function
 *    declarations and const/constexpr/atomic objects pass);
 *  - namespace-scope scan: plain variable definitions at namespace
 *    scope (tracked with a brace-scope classifier), which share state
 *    without any keyword at all.
 *
 * Known accepted miss: constructor-style initializers (`static Foo
 * x(1);`) parse like function declarations; the codebase uses
 * brace/equals init, and the audit/test layers back this up.
 */

#include <string>
#include <vector>

#include "tools/analyze/checker.h"

namespace cmpsim::analyze {

namespace {

bool
scopedDir(const SourceFile &f)
{
    return f.under("src/sim") || f.under("src/cache") ||
           f.under("src/dram");
}

bool
immutableMarker(const Token &t)
{
    return t.kind == TokKind::Ident &&
           (t.text == "const" || t.text == "constexpr" ||
            t.text == "constinit" || t.text == "atomic" ||
            t.text == "atomic_flag");
}

enum class Scope
{
    Namespace,
    Class,
    Block, ///< function body or other executable scope
    Init,  ///< brace initializer
};

class SharedStateChecker final : public Checker
{
  public:
    const char *id() const override { return "shared-state"; }
    const char *description() const override
    {
        return "mutable globals / non-const statics in src/sim, "
               "src/cache, src/dram";
    }

    void checkFile(const SourceFile &f, const AnalysisContext &,
                   std::vector<Finding> &out) const override
    {
        if (!scopedDir(f))
            return;
        scanStaticDecls(f, out);
        scanNamespaceGlobals(f, out);
    }

  private:
    /** static / thread_local declarations that stay mutable. */
    void
    scanStaticDecls(const SourceFile &f,
                    std::vector<Finding> &out) const
    {
        const auto &t = f.tokens;
        for (std::size_t i = 0; i < t.size(); ++i) {
            const bool is_static = isIdent(t, i, "static");
            const bool is_tls = isIdent(t, i, "thread_local");
            if (!is_static && !is_tls)
                continue;
            // `static thread_local` / `thread_local static`: let the
            // first keyword drive, skip the second.
            if (i > 0 && (isIdent(t, i - 1, "static") ||
                          isIdent(t, i - 1, "thread_local")))
                continue;
            // Redeclarations of externally-defined state are flagged
            // at their definition, not at every extern mention.
            if (i > 0 && isIdent(t, i - 1, "extern"))
                continue;

            bool immutable = false;
            bool function_like = false;
            std::string name;
            for (std::size_t k = i + 1; k < t.size(); ++k) {
                if (immutableMarker(t[k])) {
                    immutable = true;
                    break;
                }
                if (isPunct(t, k, ";") || isPunct(t, k, "=") ||
                    isPunct(t, k, "{"))
                    break;
                if (isPunct(t, k, "(")) {
                    // `static T name(...)` — a function declaration
                    // (or the accepted ctor-init miss, see header).
                    function_like = true;
                    break;
                }
                if (t[k].kind == TokKind::Ident)
                    name = t[k].text;
            }
            if (immutable || function_like)
                continue;
            out.push_back(
                {id(), f.path, t[i].line,
                 std::string(is_tls ? "thread_local" : "static") +
                     " mutable state '" + (name.empty() ? "?" : name) +
                     "' in a sharded-kernel directory: must be "
                     "const, std::atomic, or suppressed with a "
                     "sharing-safety argument"});
        }
    }

    /** Plain mutable variable definitions at namespace scope. */
    void
    scanNamespaceGlobals(const SourceFile &f,
                         std::vector<Finding> &out) const
    {
        const auto &t = f.tokens;
        std::vector<Scope> stack;
        std::vector<Token> stmt; // tokens since the last ; { }
        int paren_depth = 0;

        auto atNamespaceScope = [&] {
            for (Scope s : stack) {
                if (s != Scope::Namespace)
                    return false;
            }
            return true;
        };

        auto classify = [&]() -> Scope {
            bool has_eq = false, has_paren = false, is_type = false,
                 is_ns = false;
            for (const Token &tok : stmt) {
                if (tok.kind == TokKind::Ident) {
                    if (tok.text == "namespace")
                        is_ns = true;
                    if (tok.text == "class" || tok.text == "struct" ||
                        tok.text == "union" || tok.text == "enum")
                        is_type = true;
                } else if (tok.kind == TokKind::Punct) {
                    if (tok.text == "=")
                        has_eq = true;
                    if (tok.text == "(")
                        has_paren = true;
                }
            }
            if (is_ns)
                return Scope::Namespace;
            if (has_eq)
                return Scope::Init;
            if (is_type && !has_paren)
                return Scope::Class;
            return Scope::Block;
        };

        auto maybeFlagStmt = [&](bool ends_in_init) {
            if (!atNamespaceScope() || stmt.empty())
                return;
            const Token &head = stmt.front();
            if (head.kind == TokKind::Ident &&
                (head.text == "using" || head.text == "typedef" ||
                 head.text == "template" || head.text == "extern" ||
                 head.text == "friend" || head.text == "namespace" ||
                 head.text == "static_assert" || head.text == "static" ||
                 head.text == "thread_local" || head.text == "class" ||
                 head.text == "struct" || head.text == "union" ||
                 head.text == "enum" || head.text == "public" ||
                 head.text == "private" || head.text == "protected"))
                return;
            bool has_eq = false, has_paren = false;
            std::size_t idents = 0;
            std::string name;
            for (const Token &tok : stmt) {
                if (immutableMarker(tok))
                    return; // const/constexpr/atomic: fine
                if (tok.kind == TokKind::Punct) {
                    if (tok.text == "(") {
                        has_paren = true;
                        break;
                    }
                    if (tok.text == "=") {
                        has_eq = true;
                        break;
                    }
                }
                if (tok.kind == TokKind::Ident) {
                    ++idents;
                    name = tok.text;
                }
            }
            if (has_paren)
                return; // prototype / ctor-init (accepted miss)
            if (!has_eq && !ends_in_init && idents < 2)
                return; // lone expression / label, not `Type name;`
            if (!has_eq && ends_in_init)
                return; // brace-init without '=' is a function body
            out.push_back(
                {id(), f.path, head.line,
                 "namespace-scope mutable variable '" +
                     (name.empty() ? "?" : name) +
                     "' in a sharded-kernel directory: must be "
                     "const, std::atomic, or suppressed with a "
                     "sharing-safety argument"});
        };

        for (std::size_t i = 0; i < t.size(); ++i) {
            if (isPunct(t, i, "("))
                ++paren_depth;
            else if (isPunct(t, i, ")"))
                --paren_depth;

            if (paren_depth == 0 && isPunct(t, i, "{")) {
                const Scope s = classify();
                if (s == Scope::Init)
                    maybeFlagStmt(/*ends_in_init=*/true);
                stack.push_back(s);
                stmt.clear();
                continue;
            }
            if (paren_depth == 0 && isPunct(t, i, "}")) {
                if (!stack.empty())
                    stack.pop_back();
                stmt.clear();
                continue;
            }
            if (paren_depth == 0 && isPunct(t, i, ";")) {
                maybeFlagStmt(/*ends_in_init=*/false);
                stmt.clear();
                continue;
            }
            stmt.push_back(t[i]);
        }
    }
};

} // namespace

std::unique_ptr<Checker>
makeSharedStateChecker()
{
    return std::make_unique<SharedStateChecker>();
}

} // namespace cmpsim::analyze
