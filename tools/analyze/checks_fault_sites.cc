/**
 * @file
 * fault-site: every fault-probe site string in src/ — the literals
 * fed to faultSite() / faultStallActive() — must be exercised by the
 * fault-injection tests and documented in DESIGN.md §8's failure
 * model. A probe nobody injects into is dead resilience machinery; a
 * probe the docs omit is an invisible CMPSIM_FAULT surface.
 *
 * The PR that added the dram.access probe documented it in §10 but
 * forgot §8's site list — exactly the drift this check now fails.
 */

#include <sstream>
#include <string>
#include <vector>

#include "tools/analyze/checker.h"

namespace cmpsim::analyze {

namespace {

struct SiteUse
{
    std::string site;
    std::string file;
    int line = 0;
};

/** Extract DESIGN.md's "## 8. ..." section; whole text if absent. */
std::string
designSection8(const std::string &design)
{
    std::istringstream in(design);
    std::string line, section;
    bool inside = false;
    while (std::getline(in, line)) {
        if (line.rfind("## ", 0) == 0) {
            if (inside)
                break;
            inside = line.rfind("## 8", 0) == 0;
        }
        if (inside) {
            section += line;
            section += '\n';
        }
    }
    return section.empty() ? design : section;
}

class FaultSiteChecker final : public Checker
{
  public:
    const char *id() const override { return "fault-site"; }
    const char *description() const override
    {
        return "fault-probe sites covered by fault-injection tests "
               "and DESIGN.md section 8";
    }

    void checkCorpus(const Corpus &corpus, const AnalysisContext &ctx,
                     std::vector<Finding> &out) const override
    {
        std::vector<SiteUse> sites;
        for (const SourceFile &f : corpus.files) {
            if (!f.under("src"))
                continue;
            const auto &t = f.tokens;
            for (std::size_t i = 0; i + 2 < t.size(); ++i) {
                if ((isIdent(t, i, "faultSite") ||
                     isIdent(t, i, "faultStallActive")) &&
                    isPunct(t, i + 1, "(") &&
                    t[i + 2].kind == TokKind::String &&
                    !t[i + 2].text.empty()) {
                    sites.push_back(
                        {t[i + 2].text, f.path, t[i + 2].line});
                }
            }
        }
        if (sites.empty())
            return;

        const std::string section8 =
            ctx.design.empty() ? std::string() : designSection8(ctx.design);

        for (const SiteUse &s : sites) {
            // A test exercises a site either by exact string ("l2.fill"
            // in a probe/context assertion) or as the head of a
            // CMPSIM_FAULT plan string ("l2.fill:50:p0").
            const bool injected =
                ctx.tests_blob.find("\"" + s.site + "\"") !=
                    std::string::npos ||
                ctx.tests_blob.find("\"" + s.site + ":") !=
                    std::string::npos;
            if (!ctx.tests_blob.empty() && !injected) {
                out.push_back(
                    {id(), s.file, s.line,
                     "fault site \"" + s.site +
                         "\" is probed here but never injected by any "
                         "test under tests/ — untested resilience "
                         "path"});
            }
            if (!section8.empty() &&
                section8.find(s.site) == std::string::npos) {
                out.push_back(
                    {id(), s.file, s.line,
                     "fault site \"" + s.site +
                         "\" is missing from DESIGN.md section "
                         "8's failure-model site list"});
            }
        }
    }
};

} // namespace

std::unique_ptr<Checker>
makeFaultSiteChecker()
{
    return std::make_unique<FaultSiteChecker>();
}

} // namespace cmpsim::analyze
