/**
 * @file
 * Comment- and string-aware C++ lexer for cmpsim_analyze.
 *
 * Deliberately not a compiler front-end: checkers reason about token
 * *streams*, which is exactly the level the simulator's hazards live
 * at (a banned identifier, a pointer name reused after a reordering
 * call, a string literal naming an env knob). The lexer guarantees:
 *
 *  - comments and string/char literal *bodies* never produce
 *    identifier tokens (so `// rand()` and `"time("` cannot fire a
 *    checker), while string literals survive as single String tokens
 *    carrying their unquoted text (the knob and fault-site checkers
 *    match on them);
 *  - every token carries the 1-based line of the raw source it came
 *    from, including through block comments and raw strings;
 *  - `// analyze-ok: <check-id> <reason>` comments are collected as
 *    Suppression records (see checker.h for the grammar contract).
 *
 * The lexer never fails: unterminated constructs lex to end-of-file
 * rather than throwing, because an analyzer that dies on weird input
 * defends nothing.
 */

#ifndef CMPSIM_ANALYZE_LEXER_H
#define CMPSIM_ANALYZE_LEXER_H

#include <string>
#include <vector>

namespace cmpsim::analyze {

enum class TokKind
{
    Ident,  ///< identifier or keyword
    Number, ///< numeric literal (incl. hex / digit separators)
    String, ///< string literal; text holds the *unquoted* body
    Char,   ///< character literal; text holds the unquoted body
    Punct,  ///< operator / punctuation (multi-char ops are one token)
};

struct Token
{
    TokKind kind;
    std::string text;
    int line; ///< 1-based line in the raw file
};

/** One `// analyze-ok: <check-id> <reason>` comment. */
struct Suppression
{
    int line = 0;          ///< line the comment sits on
    std::string check_id;  ///< first word after the marker
    std::string reason;    ///< everything after the check id, trimmed
    mutable bool used = false;
};

/** A lexed file: repo-relative path + tokens + suppressions. */
struct SourceFile
{
    std::string path; ///< repo-relative, '/'-separated
    std::vector<Token> tokens;
    std::vector<Suppression> suppressions;

    /** True when @p path is under directory @p dir ("src/cache"). */
    bool under(const std::string &dir) const;
};

/** Lex @p text as the contents of @p path. Never throws. */
SourceFile lexSource(const std::string &path, const std::string &text);

} // namespace cmpsim::analyze

#endif // CMPSIM_ANALYZE_LEXER_H
