/**
 * @file
 * cmpsim_analyze — repo-specific static analysis for the simulator.
 *
 * Usage:
 *   cmpsim_analyze [--root DIR] [--json] [--list-checks] [PATH...]
 *
 * PATHs are directories or files relative to --root (default: the
 * current directory, walking up until README.md + src/ are found).
 * With no PATHs the default scan set is: src tools bench examples.
 *
 * Exit codes: 0 = clean, 1 = unsuppressed findings, 2 = usage or I/O
 * error. CI and tools/lint.sh rely on this contract.
 */

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "tools/analyze/checker.h"
#include "tools/analyze/lexer.h"

namespace fs = std::filesystem;
using namespace cmpsim::analyze;

namespace {

bool
readFile(const fs::path &p, std::string &out)
{
    std::ifstream in(p, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    out = ss.str();
    return true;
}

bool
isSourceFile(const fs::path &p)
{
    const std::string ext = p.extension().string();
    return ext == ".cc" || ext == ".h";
}

/** Locate the repo root: the nearest ancestor holding README.md and
 *  src/, so the tool works from build/ as well as the checkout. */
fs::path
findRoot()
{
    fs::path dir = fs::current_path();
    for (;;) {
        if (fs::exists(dir / "README.md") && fs::is_directory(dir / "src"))
            return dir;
        if (!dir.has_parent_path() || dir.parent_path() == dir)
            return fs::current_path();
        dir = dir.parent_path();
    }
}

std::string
relPath(const fs::path &p, const fs::path &root)
{
    std::error_code ec;
    const fs::path rel = fs::relative(p, root, ec);
    return (ec ? p : rel).generic_string();
}

int
usage(std::ostream &os, int code)
{
    os << "usage: cmpsim_analyze [--root DIR] [--json] [--list-checks]"
          " [PATH...]\n"
          "  PATHs default to: src tools bench examples\n";
    return code;
}

} // namespace

int
main(int argc, char **argv)
{
    bool json = false;
    bool list_checks = false;
    fs::path root;
    std::vector<std::string> paths;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--json") {
            json = true;
        } else if (arg == "--list-checks") {
            list_checks = true;
        } else if (arg == "--root") {
            if (++i >= argc)
                return usage(std::cerr, 2);
            root = argv[i];
        } else if (arg == "--help" || arg == "-h") {
            return usage(std::cout, 0);
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "cmpsim_analyze: unknown option " << arg << "\n";
            return usage(std::cerr, 2);
        } else {
            paths.push_back(arg);
        }
    }

    if (list_checks) {
        for (const auto &checker : allCheckers()) {
            std::cout << checker->id() << "\t" << checker->description()
                      << "\n";
        }
        std::cout << "suppression\tanalyze-ok comments must name a known "
                     "check and carry a reason\n";
        return 0;
    }

    if (root.empty())
        root = findRoot();
    if (!fs::is_directory(root)) {
        std::cerr << "cmpsim_analyze: --root " << root.string()
                  << " is not a directory\n";
        return 2;
    }
    if (paths.empty())
        paths = {"src", "tools", "bench", "examples"};

    // Collect the scan set, sorted for stable output.
    std::vector<fs::path> files;
    for (const std::string &p : paths) {
        const fs::path abs = root / p;
        if (fs::is_directory(abs)) {
            for (const auto &entry :
                 fs::recursive_directory_iterator(abs)) {
                if (entry.is_regular_file() &&
                    isSourceFile(entry.path()))
                    files.push_back(entry.path());
            }
        } else if (fs::is_regular_file(abs)) {
            files.push_back(abs);
        } else {
            std::cerr << "cmpsim_analyze: no such path: " << p << "\n";
            return 2;
        }
    }
    std::sort(files.begin(), files.end());
    files.erase(std::unique(files.begin(), files.end()), files.end());

    Corpus corpus;
    for (const fs::path &p : files) {
        std::string text;
        if (!readFile(p, text)) {
            std::cerr << "cmpsim_analyze: cannot read " << p.string()
                      << "\n";
            return 2;
        }
        corpus.files.push_back(lexSource(relPath(p, root), text));
    }

    AnalysisContext ctx;
    readFile(root / "README.md", ctx.readme);
    readFile(root / "DESIGN.md", ctx.design);
    readFile(root / "CMakeLists.txt", ctx.cmake);
    if (fs::is_directory(root / "tests")) {
        std::vector<fs::path> test_files;
        for (const auto &entry :
             fs::recursive_directory_iterator(root / "tests")) {
            if (entry.is_regular_file() && isSourceFile(entry.path()))
                test_files.push_back(entry.path());
        }
        std::sort(test_files.begin(), test_files.end());
        for (const fs::path &p : test_files) {
            std::string text;
            if (readFile(p, text)) {
                ctx.tests_blob += text;
                ctx.tests_blob += '\n';
            }
        }
    }

    const AnalysisResult result = runAnalysis(corpus, ctx);

    if (json) {
        std::cout << toJson(result);
    } else {
        for (const Finding &f : result.findings) {
            std::cout << f.file << ":" << f.line << ": [" << f.check
                      << "] " << f.message << "\n";
        }
        std::cout << "cmpsim_analyze: " << corpus.files.size()
                  << " files, " << result.findings.size()
                  << " finding(s), " << result.suppressed.size()
                  << " suppressed\n";
    }
    return result.findings.empty() ? 0 : 1;
}
