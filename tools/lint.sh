#!/usr/bin/env bash
# Grep-based lint for simulator-specific hazards that neither the
# compiler nor clang-tidy catches:
#
#  1. Nondeterminism: raw rand()/srand()/time()/gettimeofday()/
#     random_device in simulator code. All randomness must flow from
#     the seeded Random class (src/common/random.h) or reproducibility
#     across runs — the determinism_check gate — is gone.
#  2. Iterator/pointer invalidation: holding a TagEntry* across a
#     DecoupledSet::touch()/insert()/resize() call in the same
#     function. touch() rotates the entry vector, so a previously
#     found pointer dangles (see the "invalidates e" re-find idiom in
#     l1_cache.cc / l2_cache.cc).
#
# A finding can be suppressed with a trailing "// lint-ok: <reason>".
# Exits non-zero when anything fires.
set -u
cd "$(dirname "$0")/.."

STATUS=0
SOURCES=$(find src tools bench examples -name '*.cc' -o -name '*.h' \
          2>/dev/null | sort)

# --- banned nondeterminism sources ---------------------------------
# Comments are stripped (preserving line numbers) before matching.
BANNED='\b(rand|srand|time|gettimeofday|clock_gettime)\s*\(|std::random_device|std::mt19937'
for f in ${SOURCES}; do
    hits=$(sed 's,//.*,,' "$f" | grep -nE "${BANNED}" || true)
    hits=$(echo "${hits}" | grep -v 'lint-ok:' || true)
    if [ -n "${hits}" ]; then
        echo "lint: banned nondeterminism source in $f:"
        echo "${hits}" | sed 's/^/    /'
        STATUS=1
    fi
done

# --- TagEntry pointers held across reordering calls ----------------
# Heuristic: inside one function body, a "TagEntry *x = ...find..."
# binding followed by touch(/insert(/resize( and then another use of
# *x or x-> without an intervening re-find assignment to x.
for f in ${SOURCES}; do
    hits=$(awk '
        /TagEntry \*[a-z_]+ *=.*find/ {
            match($0, /TagEntry \*[a-z_]+/)
            ptr = substr($0, RSTART + 10, RLENGTH - 10)
            gsub(/^ +| +$/, "", ptr)
            held[ptr] = FNR
            moved[ptr] = 0
            next
        }
        {
            # Re-assignment (the re-find idiom) makes the pointer
            # fresh again.
            for (p in held) {
                if ($0 ~ ("(^|[^A-Za-z0-9_>.])" p " *= ")) moved[p] = 0
            }
        }
        /\.(touch|insert|resize)\(/ {
            for (p in held) if (moved[p] == 0) moved[p] = FNR
            next
        }
        {
            for (p in held) {
                if (moved[p] > 0 && $0 ~ (p " *(->|\\[)")) {
                    if ($0 ~ /lint-ok:/) continue
                    printf "    %d: %s held across reorder at line %d: %s\n",
                           FNR, p, moved[p], $0
                }
            }
        }
        /^}/ { delete held; delete moved }
    ' "$f")
    if [ -n "${hits}" ]; then
        echo "lint: TagEntry pointer held across touch()/insert()/resize() in $f:"
        echo "${hits}"
        STATUS=1
    fi
done

if [ ${STATUS} -eq 0 ]; then
    echo "lint: clean"
fi
exit ${STATUS}
