#!/usr/bin/env bash
# Thin wrapper over cmpsim_analyze, the repo-specific static analyzer
# (tools/analyze/, DESIGN.md §11). The analyzer replaced this script's
# old grep/awk heuristics with token-level checkers: banned
# nondeterminism sources, unordered-container iteration, TagEntry*
# held across DecoupledSet reordering, env-knob registry drift,
# fault-site coverage, and mutable shared state in the kernel
# directories. Findings are suppressed in-source with
# "// analyze-ok: <check-id> <reason>".
#
# Exit status: 0 clean, 1 findings, 2 build/usage failure — the same
# contract CI has always keyed on.
set -u
cd "$(dirname "$0")/.."

ANALYZE=""
for candidate in build/tools/analyze/cmpsim_analyze \
                 build-*/tools/analyze/cmpsim_analyze; do
    if [ -x "${candidate}" ]; then
        ANALYZE="${candidate}"
        break
    fi
done

if [ -z "${ANALYZE}" ]; then
    echo "lint: building cmpsim_analyze..." >&2
    cmake -B build -S . >/dev/null || exit 2
    cmake --build build --target cmpsim_analyze >/dev/null || exit 2
    ANALYZE=build/tools/analyze/cmpsim_analyze
fi

exec "${ANALYZE}" --root . "$@"
