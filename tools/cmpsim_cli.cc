/**
 * @file
 * cmpsim command-line driver: configure any system the paper
 * evaluates (and the ablation variants), run one simulation, and dump
 * the statistics.
 *
 *   cmpsim --workload zeus --compression --prefetch --adaptive
 *   cmpsim --workload jbb --cores 16 --bandwidth 10 --stats
 *   cmpsim --workload apache --record trace.bin --record-count 100000
 *
 * Run with --help for the full flag list.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>

#include "src/core_api/cmp_system.h"
#include "src/workload/trace.h"

using namespace cmpsim;

namespace {

struct CliOptions
{
    std::string workload = "zeus";
    std::string record_path;
    std::uint64_t record_count = 100000;
    unsigned cores = 8;
    unsigned scale = 4;
    bool cache_compression = false;
    bool link_compression = false;
    bool prefetch = false;
    bool adaptive = false;
    bool adaptive_compression = false;
    bool infinite_bw = false;
    double bandwidth = 20.0;
    std::uint64_t warmup = 400000;
    std::uint64_t measure = 50000;
    std::uint64_t seed = 1;
    bool dump_stats = false;
};

[[noreturn]] void
usage(int code)
{
    std::printf(
        "cmpsim — CMP compression/prefetching simulator (HPCA'07 "
        "reproduction)\n\n"
        "usage: cmpsim [flags]\n\n"
        "  --workload NAME     apache zeus oltp jbb art apsi fma3d "
        "mgrid (default zeus)\n"
        "  --record FILE       record the workload's instruction "
        "stream to FILE and exit\n"
        "  --record-count N    instructions to record (default "
        "100000)\n"
        "  --cores N           1..16 (default 8)\n"
        "  --scale N           capacity divisor; 1 = paper-size 4 MB "
        "L2 (default 4)\n"
        "  --compression       cache + link compression\n"
        "  --cache-compression / --link-compression  individually\n"
        "  --adaptive-compression  ISCA'04 compression policy\n"
        "  --prefetch          L1I/L1D/L2 stride prefetchers\n"
        "  --adaptive          adaptive prefetch throttling\n"
        "  --bandwidth GBPS    pin bandwidth (default 20)\n"
        "  --infinite-bw       measure bandwidth demand (no queuing)\n"
        "  --warmup N          functional warmup instr/core (default "
        "400000)\n"
        "  --measure N         timed instr/core (default 50000)\n"
        "  --seed N            RNG seed (default 1)\n"
        "  --stats             dump every registered counter\n"
        "  --help\n");
    std::exit(code);
}

CliOptions
parse(int argc, char **argv)
{
    CliOptions o;
    auto need_value = [&](int i) -> const char * {
        if (i + 1 >= argc) {
            std::fprintf(stderr, "missing value for %s\n", argv[i]);
            usage(1);
        }
        return argv[i + 1];
    };
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--help" || a == "-h") {
            usage(0);
        } else if (a == "--workload") {
            o.workload = need_value(i++);
        } else if (a == "--record") {
            o.record_path = need_value(i++);
        } else if (a == "--record-count") {
            o.record_count = std::strtoull(need_value(i++), nullptr, 10);
        } else if (a == "--cores") {
            o.cores = static_cast<unsigned>(
                std::strtoul(need_value(i++), nullptr, 10));
        } else if (a == "--scale") {
            o.scale = static_cast<unsigned>(
                std::strtoul(need_value(i++), nullptr, 10));
        } else if (a == "--compression") {
            o.cache_compression = o.link_compression = true;
        } else if (a == "--cache-compression") {
            o.cache_compression = true;
        } else if (a == "--link-compression") {
            o.link_compression = true;
        } else if (a == "--adaptive-compression") {
            o.adaptive_compression = true;
        } else if (a == "--prefetch") {
            o.prefetch = true;
        } else if (a == "--adaptive") {
            o.prefetch = true;
            o.adaptive = true;
        } else if (a == "--bandwidth") {
            o.bandwidth = std::strtod(need_value(i++), nullptr);
        } else if (a == "--infinite-bw") {
            o.infinite_bw = true;
        } else if (a == "--warmup") {
            o.warmup = std::strtoull(need_value(i++), nullptr, 10);
        } else if (a == "--measure") {
            o.measure = std::strtoull(need_value(i++), nullptr, 10);
        } else if (a == "--seed") {
            o.seed = std::strtoull(need_value(i++), nullptr, 10);
        } else if (a == "--stats") {
            o.dump_stats = true;
        } else {
            std::fprintf(stderr, "unknown flag: %s\n", a.c_str());
            usage(1);
        }
    }
    return o;
}

} // namespace

int
main(int argc, char **argv)
{
    const CliOptions o = parse(argc, argv);

    if (!o.record_path.empty()) {
        // Trace-capture mode: no simulation, just the stream.
        FpcCompressor fpc;
        ValueStore values(fpc);
        const auto params =
            benchmarkParams(o.workload).scaled(o.scale);
        SyntheticWorkload stream(params, values, 0, o.seed);
        TraceWriter::record(stream, o.record_count, o.record_path);
        std::printf("recorded %llu instructions of %s to %s\n",
                    static_cast<unsigned long long>(o.record_count),
                    o.workload.c_str(), o.record_path.c_str());
        return 0;
    }

    SystemConfig cfg =
        makeConfig(o.cores, o.scale, o.cache_compression,
                   o.link_compression, o.prefetch, o.adaptive,
                   o.bandwidth);
    cfg.infinite_bandwidth = o.infinite_bw;
    cfg.adaptive_compression = o.adaptive_compression;
    cfg.seed = o.seed;

    std::printf("cmpsim: %s, %u cores, scale %u (L2 %u KB), "
                "%.0f GB/s%s%s%s%s%s\n",
                o.workload.c_str(),
                o.cores, o.scale, 4096 / o.scale, o.bandwidth,
                o.infinite_bw ? " (infinite)" : "",
                o.cache_compression ? ", cache-compr" : "",
                o.link_compression ? ", link-compr" : "",
                o.prefetch ? ", prefetch" : "",
                o.adaptive ? " (adaptive)" : "");

    CmpSystem sys(cfg, benchmarkParams(o.workload));
    sys.warmup(o.warmup);
    sys.run(o.measure);

    std::printf("\ncycles        %llu\n",
                static_cast<unsigned long long>(sys.cycles()));
    std::printf("instructions  %llu\n",
                static_cast<unsigned long long>(sys.instructions()));
    std::printf("IPC           %.3f (%.3f per core)\n", sys.ipc(),
                sys.ipc() / o.cores);
    std::printf("off-chip bw   %.2f GB/s\n", sys.bandwidthGBps());
    const auto &reg = sys.stats();
    const double ki = static_cast<double>(sys.instructions()) / 1000.0;
    std::printf("L2 misses     %llu (%.2f per 1k instr)\n",
                static_cast<unsigned long long>(
                    reg.counter("l2.demand_misses")),
                static_cast<double>(reg.counter("l2.demand_misses")) /
                    ki);
    if (o.cache_compression)
        std::printf("L2 ratio      %.2f\n", sys.compressionRatio());
    if (o.prefetch) {
        std::printf("L2 prefetches %llu issued, %llu hits\n",
                    static_cast<unsigned long long>(
                        reg.counter("l2.l2pf_issued")),
                    static_cast<unsigned long long>(
                        reg.counter("l2.pf_hits_l2")));
        if (o.adaptive)
            std::printf("L2 adaptive counter %u / 25\n",
                        sys.l2Adaptive().counterValue());
    }

    if (o.dump_stats) {
        std::printf("\n--- full statistics ---\n");
        std::ostringstream os;
        reg.dump(os);
        std::fputs(os.str().c_str(), stdout);
    }
    return 0;
}
