/**
 * @file
 * cmpsim command-line driver: configure any system the paper
 * evaluates (and the ablation variants), run one simulation, and dump
 * the statistics.
 *
 *   cmpsim --workload zeus --compression --prefetch --adaptive
 *   cmpsim --workload jbb --cores 16 --bandwidth 10 --stats
 *   cmpsim --workload apache --record trace.bin --record-count 100000
 *
 * Run with --help for the full flag list.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "src/common/fingerprint.h"
#include "src/common/sim_error.h"
#include "src/core_api/cmp_system.h"
#include "src/core_api/parallel_runner.h"
#include "src/obs/cpi_stack.h"
#include "src/obs/profiler.h"
#include "src/obs/run_report.h"
#include "src/obs/trace.h"
#include "src/sample/sampling_controller.h"
#include "src/sim/fault_injection.h"
#include "src/workload/trace.h"

using namespace cmpsim;

namespace {

/** One-line structured error, machine-grepable, exit code 2. */
[[noreturn]] void
die(const char *context, const std::string &message)
{
    std::fprintf(stderr, "cmpsim: error: [usage] %s: %s\n", context,
                 message.c_str());
    std::exit(2);
}

struct CliOptions
{
    std::string workload = "zeus";
    std::string record_path;
    std::uint64_t record_count = 100000;
    unsigned cores = 8;
    unsigned scale = 4;
    bool cache_compression = false;
    bool link_compression = false;
    bool prefetch = false;
    bool adaptive = false;
    bool adaptive_compression = false;
    bool infinite_bw = false;
    double bandwidth = 20.0;
    std::uint64_t warmup = 400000;
    std::uint64_t measure = 50000;
    std::uint64_t seed = 1;
    bool dump_stats = false;
    bool cpi_stack = false;   ///< --cpi-stack: attribution layer
    std::string report_path;  ///< --report: JSON run report
    std::string trace_path;   ///< --trace: Chrome trace events
    std::string samples_path; ///< --samples: interval time-series
    std::uint64_t sample_cycles = 0; ///< --sample-cycles period
    std::string sampling_spec; ///< --sampling plan spec
};

[[noreturn]] void
usage(int code)
{
    std::printf(
        "cmpsim — CMP compression/prefetching simulator (HPCA'07 "
        "reproduction)\n\n"
        "usage: cmpsim [flags]\n\n"
        "  --workload NAME     apache zeus oltp jbb art apsi fma3d "
        "mgrid (default zeus)\n"
        "  --record FILE       record the workload's instruction "
        "stream to FILE and exit\n"
        "  --record-count N    instructions to record (default "
        "100000)\n"
        "  --cores N           1..16 (default 8)\n"
        "  --scale N           capacity divisor; 1 = paper-size 4 MB "
        "L2 (default 4)\n"
        "  --compression       cache + link compression\n"
        "  --cache-compression / --link-compression  individually\n"
        "  --adaptive-compression  ISCA'04 compression policy\n"
        "  --prefetch          L1I/L1D/L2 stride prefetchers\n"
        "  --adaptive          adaptive prefetch throttling\n"
        "  --bandwidth GBPS    pin bandwidth (default 20)\n"
        "  --infinite-bw       measure bandwidth demand (no queuing)\n"
        "  --warmup N          functional warmup instr/core (default "
        "400000)\n"
        "  --measure N         timed instr/core (default 50000)\n"
        "  --seed N            RNG seed (default 1)\n"
        "  --stats             dump every registered counter\n"
        "  --cpi-stack         arm CPI-stack / miss-genealogy\n"
        "                      attribution (also CMPSIM_CPISTACK=1);\n"
        "                      prints per-core stacks and adds a\n"
        "                      cpi_stack section to --report\n"
        "  --report FILE       write a structured JSON run report\n"
        "  --trace FILE        write Chrome trace events (load in\n"
        "                      Perfetto / chrome://tracing); also\n"
        "                      enabled by CMPSIM_TRACE=FILE\n"
        "  --samples FILE      write the interval time-series (CSV,\n"
        "                      or JSON when FILE ends in .json)\n"
        "  --sample-cycles N   sampling period (default 100000 when\n"
        "                      --samples is given; also\n"
        "                      CMPSIM_SAMPLE_CYCLES)\n"
        "  --sampling SPEC     statistical sampling plan\n"
        "                      <ff>:<detail>:<n>[:ci<pct>] — alternate\n"
        "                      ff fast-forward and detail timed instr\n"
        "                      per core over n intervals, report every\n"
        "                      metric with a 95%% CI (--measure is then\n"
        "                      ignored; also CMPSIM_SAMPLING)\n"
        "  --help\n");
    std::exit(code);
}

CliOptions
parse(int argc, char **argv)
{
    CliOptions o;
    auto need_value = [&](int i) -> const char * {
        if (i + 1 >= argc)
            die(argv[i], "missing value");
        return argv[i + 1];
    };
    auto parse_uint = [&](int i) -> std::uint64_t {
        const char *v = need_value(i);
        char *end = nullptr;
        const std::uint64_t parsed = std::strtoull(v, &end, 10);
        if (end == v || *end != '\0')
            die(argv[i], std::string("bad integer \"") + v + "\"");
        return parsed;
    };
    auto parse_double = [&](int i) -> double {
        const char *v = need_value(i);
        char *end = nullptr;
        const double parsed = std::strtod(v, &end);
        if (end == v || *end != '\0')
            die(argv[i], std::string("bad number \"") + v + "\"");
        return parsed;
    };
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--help" || a == "-h") {
            usage(0);
        } else if (a == "--workload") {
            o.workload = need_value(i++);
        } else if (a == "--record") {
            o.record_path = need_value(i++);
        } else if (a == "--record-count") {
            o.record_count = parse_uint(i++);
        } else if (a == "--cores") {
            o.cores = static_cast<unsigned>(parse_uint(i++));
        } else if (a == "--scale") {
            o.scale = static_cast<unsigned>(parse_uint(i++));
        } else if (a == "--compression") {
            o.cache_compression = o.link_compression = true;
        } else if (a == "--cache-compression") {
            o.cache_compression = true;
        } else if (a == "--link-compression") {
            o.link_compression = true;
        } else if (a == "--adaptive-compression") {
            o.adaptive_compression = true;
        } else if (a == "--prefetch") {
            o.prefetch = true;
        } else if (a == "--adaptive") {
            o.prefetch = true;
            o.adaptive = true;
        } else if (a == "--bandwidth") {
            o.bandwidth = parse_double(i++);
        } else if (a == "--infinite-bw") {
            o.infinite_bw = true;
        } else if (a == "--warmup") {
            o.warmup = parse_uint(i++);
        } else if (a == "--measure") {
            o.measure = parse_uint(i++);
        } else if (a == "--seed") {
            o.seed = parse_uint(i++);
        } else if (a == "--stats") {
            o.dump_stats = true;
        } else if (a == "--cpi-stack") {
            o.cpi_stack = true;
        } else if (a == "--report") {
            o.report_path = need_value(i++);
        } else if (a == "--trace") {
            o.trace_path = need_value(i++);
        } else if (a == "--samples") {
            o.samples_path = need_value(i++);
        } else if (a == "--sample-cycles") {
            o.sample_cycles = parse_uint(i++);
        } else if (a == "--sampling") {
            o.sampling_spec = need_value(i++);
        } else {
            die(a.c_str(), "unknown flag (see --help)");
        }
    }
    return o;
}

/** The real driver; throws SimError for anything the simulator
 *  rejects (unknown benchmark, bad config, injected fault, ...). */
int
run(const CliOptions &o)
{
    // Honour the environment failure-model knobs for single runs too:
    // CMPSIM_FAULT arms attempt 1 and CMPSIM_POINT_TIMEOUT bounds the
    // whole warmup+run step, exactly as one parallel-runner task.
    const RunPolicy policy = defaultRunPolicy();
    FaultArmGuard arm(policy.faults, 1);
    DeadlineGuard deadline(policy.point_timeout_sec);

    if (!o.record_path.empty()) {
        // Trace-capture mode: no simulation, just the stream.
        FpcCompressor fpc;
        ValueStore values(fpc);
        const auto params =
            benchmarkParams(o.workload).scaled(o.scale);
        SyntheticWorkload stream(params, values, 0, o.seed);
        TraceWriter::record(stream, o.record_count, o.record_path);
        std::printf("recorded %llu instructions of %s to %s\n",
                    static_cast<unsigned long long>(o.record_count),
                    o.workload.c_str(), o.record_path.c_str());
        return 0;
    }

    SystemConfig cfg =
        makeConfig(o.cores, o.scale, o.cache_compression,
                   o.link_compression, o.prefetch, o.adaptive,
                   o.bandwidth);
    cfg.infinite_bandwidth = o.infinite_bw;
    cfg.adaptive_compression = o.adaptive_compression;
    cfg.seed = o.seed;
    cfg.cpi_stack = o.cpi_stack;
    cfg.sample_interval = o.sample_cycles;
    if (!o.sampling_spec.empty())
        cfg.sampling = SamplingPlan::parse(o.sampling_spec);
    if (!o.samples_path.empty() && cfg.sample_interval == 0 &&
        std::getenv("CMPSIM_SAMPLE_CYCLES") == nullptr)
        cfg.sample_interval = 100000; // --samples implies sampling
    // Validate before the banner: "--scale 0" must die with a
    // ConfigError, not divide the L2-size estimate by zero.
    cfg.validate();

    // Observability session: the tracer arms process-wide probes
    // (--trace overrides CMPSIM_TRACE); CMPSIM_PROF=1 turns the
    // scoped timers on, reported in the --report JSON.
    profInitFromEnv();
    TraceSession trace_session(o.trace_path);

    std::printf("cmpsim: %s, %u cores, scale %u (L2 %u KB), "
                "%.0f GB/s%s%s%s%s%s\n",
                o.workload.c_str(),
                o.cores, o.scale, 4096 / o.scale, o.bandwidth,
                o.infinite_bw ? " (infinite)" : "",
                o.cache_compression ? ", cache-compr" : "",
                o.link_compression ? ", link-compr" : "",
                o.prefetch ? ", prefetch" : "",
                o.adaptive ? " (adaptive)" : "");

    RunReport report;
    report.benchmark = o.workload;
    report.seed = o.seed;
    report.warmup_per_core = o.warmup;
    report.measure_per_core = o.measure;
    {
        PointSpec spec;
        spec.config = cfg;
        spec.benchmark = o.workload;
        spec.lengths.warmup_per_core = o.warmup;
        spec.lengths.measure_per_core = o.measure;
        spec.seeds = 1;
        report.config_fingerprint = fnv1a(pointSpecBytes(spec));
    }
    const auto wall_start = std::chrono::steady_clock::now();
    auto writeReport = [&](CmpSystem &system) {
        if (o.report_path.empty())
            return;
        report.wall_seconds =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - wall_start)
                .count();
        report.max_rss_kb = currentMaxRssKb();
        report.prof = profSnapshot();
        captureStats(system.stats(), report);
        if (system.config().cpi_stack)
            captureCpiStats(system.cpiStats(), report);
        std::ofstream out(o.report_path,
                          std::ios::binary | std::ios::trunc);
        if (!out.is_open()) {
            throw ConfigError("report",
                              "cannot open report file \"" +
                                  o.report_path + "\" for writing");
        }
        writeRunReport(out, report);
    };

    CmpSystem sys(cfg, benchmarkParams(o.workload));
    SamplingResult sampled;
    const bool sampling_armed = cfg.sampling.armed();
    try {
        sys.warmup(o.warmup);
        if (sampling_armed) {
            SamplingController ctl(sys);
            sampled = ctl.run();
        } else {
            sys.run(o.measure);
        }
    } catch (const SimError &e) {
        // A failed run still leaves a report: status, the error, and
        // whatever stats the run accumulated before it died.
        report.status = errorKindName(e.kind());
        report.error = e.what();
        writeReport(sys);
        throw;
    }

    if (sampling_armed) {
        // Sampled run: aggregate over the detailed intervals (the
        // plain sys.cycles() headline would only cover the last one)
        // and print each metric with its 95% CI.
        const double dc = sampled.detail_cycles;
        const double di = sampled.detail_instructions;
        report.cycles = static_cast<std::uint64_t>(dc);
        report.instructions = static_cast<std::uint64_t>(di);
        report.ipc = dc > 0 ? di / dc : 0;
        report.bandwidth_gbps = sampled.bandwidth_gbps.mean;
        report.compression_ratio = sampled.compression_ratio.mean;
        report.sampling.armed = true;
        report.sampling.intervals = sampled.intervals;
        report.sampling.stopped_early = sampled.stopped_early;
        report.sampling.ff_instructions =
            static_cast<double>(sampled.ff_instructions);
        report.sampling.metrics = {
            {"cycles", sampled.cycles},
            {"ipc", sampled.ipc},
            {"l2_miss_rate", sampled.l2_miss_rate},
            {"l2_mpki", sampled.l2_mpki},
            {"bandwidth_gbps", sampled.bandwidth_gbps},
            {"compression_ratio", sampled.compression_ratio}};

        std::printf("\n--- sampled run: %u intervals%s, "
                    "%llu instr fast-forwarded ---\n",
                    sampled.intervals,
                    sampled.stopped_early ? " (CI target met early)"
                                          : "",
                    static_cast<unsigned long long>(
                        sampled.ff_instructions));
        std::printf("detail cycles %.0f, detail instructions %.0f "
                    "(aggregate IPC %.3f)\n",
                    dc, di, report.ipc);
        std::printf("%-20s %12s %12s\n", "metric", "mean",
                    "ci95 (+/-)");
        for (const auto &[name, s] : report.sampling.metrics)
            std::printf("%-20s %12.4f %12.4f\n", name.c_str(), s.mean,
                        s.ci95);

        writeReport(sys);
        if (!o.report_path.empty())
            std::printf("run report    %s\n", o.report_path.c_str());
        if (trace_session.tracer() != nullptr)
            std::printf("trace         %llu events -> %s\n",
                        static_cast<unsigned long long>(
                            trace_session.tracer()->eventsWritten()),
                        trace_session.tracer()->path().c_str());
        return 0;
    }

    report.cycles = sys.cycles();
    report.instructions = sys.instructions();
    report.ipc = sys.ipc();
    report.bandwidth_gbps = sys.bandwidthGBps();
    report.compression_ratio = sys.compressionRatio();

    std::printf("\ncycles        %llu\n",
                static_cast<unsigned long long>(sys.cycles()));
    std::printf("instructions  %llu\n",
                static_cast<unsigned long long>(sys.instructions()));
    std::printf("IPC           %.3f (%.3f per core)\n", sys.ipc(),
                sys.ipc() / o.cores);
    std::printf("off-chip bw   %.2f GB/s\n", sys.bandwidthGBps());
    const auto &reg = sys.stats();
    const double ki = static_cast<double>(sys.instructions()) / 1000.0;
    std::printf("L2 misses     %llu (%.2f per 1k instr)\n",
                static_cast<unsigned long long>(
                    reg.counter("l2.demand_misses")),
                static_cast<double>(reg.counter("l2.demand_misses")) /
                    ki);
    if (o.cache_compression)
        std::printf("L2 ratio      %.2f\n", sys.compressionRatio());
    if (o.prefetch) {
        std::printf("L2 prefetches %llu issued, %llu hits\n",
                    static_cast<unsigned long long>(
                        reg.counter("l2.l2pf_issued")),
                    static_cast<unsigned long long>(
                        reg.counter("l2.pf_hits_l2")));
        if (o.adaptive)
            std::printf("L2 adaptive counter %u / 25\n",
                        sys.l2Adaptive().counterValue());
    }

    if (sys.config().cpi_stack) {
        // Per-core stacks: every attributed cycle belongs to exactly
        // one leaf, so each line sums to that core's measured cycles.
        std::printf("\n--- CPI stack (cycles per leaf) ---\n");
        for (unsigned c = 0; c < o.cores; ++c) {
            const CpiAccount *a = sys.cpiAccount(c);
            if (a == nullptr)
                continue;
            std::printf("core %u:", c);
            for (unsigned l = 0; l < kCpiLeafCount; ++l) {
                const auto leaf = static_cast<CpiLeaf>(l);
                const std::uint64_t v = a->leafCycles(leaf);
                if (v != 0)
                    std::printf(" %s=%llu", cpiLeafName(leaf),
                                static_cast<unsigned long long>(v));
            }
            std::printf(" (pf_hidden=%llu)\n",
                        static_cast<unsigned long long>(
                            a->pfHiddenCycles()));
        }
        const MissJournal *j = sys.missJournal();
        if (j != nullptr)
            std::printf("journeys      %llu completed\n",
                        static_cast<unsigned long long>(
                            j->recordsCompleted()));
    }

    if (o.dump_stats) {
        std::printf("\n--- full statistics ---\n");
        std::ostringstream os;
        reg.dump(os);
        std::fputs(os.str().c_str(), stdout);
    }

    if (!o.samples_path.empty()) {
        const IntervalSampler *sampler = sys.sampler();
        if (sampler == nullptr) {
            throw ConfigError("samples",
                              "--samples needs a sampling interval "
                              "(--sample-cycles or "
                              "CMPSIM_SAMPLE_CYCLES)");
        }
        std::ofstream out(o.samples_path,
                          std::ios::binary | std::ios::trunc);
        if (!out.is_open()) {
            throw ConfigError("samples",
                              "cannot open samples file \"" +
                                  o.samples_path + "\" for writing");
        }
        const bool json =
            o.samples_path.size() >= 5 &&
            o.samples_path.compare(o.samples_path.size() - 5, 5,
                                   ".json") == 0;
        if (json)
            sampler->writeJson(out);
        else
            sampler->writeCsv(out);
        std::printf("samples       %zu intervals -> %s\n",
                    sampler->rows().size(), o.samples_path.c_str());
    }

    writeReport(sys);
    if (!o.report_path.empty())
        std::printf("run report    %s\n", o.report_path.c_str());
    if (trace_session.tracer() != nullptr)
        std::printf("trace         %llu events -> %s\n",
                    static_cast<unsigned long long>(
                        trace_session.tracer()->eventsWritten()),
                    trace_session.tracer()->path().c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    const CliOptions o = parse(argc, argv);
    try {
        return run(o);
    } catch (const SimError &e) {
        // what() is already "[kind] context: message" — one line,
        // machine-grepable.
        std::fprintf(stderr, "cmpsim: error: %s\n", e.what());
        return 2;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "cmpsim: error: [internal] %s\n", e.what());
        return 2;
    }
}
