#!/usr/bin/env bash
# Run clang-tidy (config: repo-root .clang-tidy) over the simulator
# sources using the compile database of an existing build tree.
#
#   tools/run_clang_tidy.sh [build-dir]
#
# The build tree must have been configured with
# -DCMAKE_EXPORT_COMPILE_COMMANDS=ON (the script configures one for you
# if the directory does not exist). Exits 0 when clang-tidy is not
# installed so optional CI legs can call it unconditionally.
set -u

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

TIDY="$(command -v clang-tidy || true)"
if [ -z "${TIDY}" ]; then
    echo "run_clang_tidy: clang-tidy not found; skipping" >&2
    exit 0
fi

if [ ! -f "${BUILD_DIR}/compile_commands.json" ]; then
    cmake -B "${BUILD_DIR}" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
        >/dev/null || exit 1
fi
if [ ! -f "${BUILD_DIR}/compile_commands.json" ]; then
    echo "run_clang_tidy: no compile_commands.json in ${BUILD_DIR}" >&2
    exit 1
fi

# run-clang-tidy parallelizes across the database when available.
RUNNER="$(command -v run-clang-tidy || true)"
if [ -n "${RUNNER}" ]; then
    "${RUNNER}" -quiet -p "${BUILD_DIR}" 'src/.*\.cc$'
    exit $?
fi

STATUS=0
for f in $(find src -name '*.cc' | sort); do
    "${TIDY}" --quiet -p "${BUILD_DIR}" "$f" || STATUS=1
done
exit ${STATUS}
