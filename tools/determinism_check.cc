/**
 * @file
 * Bit-reproducibility gate: run the same experiment twice with the
 * same seed and compare a hash of every registered statistic.
 *
 * The simulator's results must be a pure function of (config, seed) —
 * any dependence on wall-clock time, ASLR'd pointer values (e.g.
 * hashing a pointer into an event order) or uninitialized memory
 * shows up here as a hash mismatch long before anyone notices a
 * figure is unreproducible.
 *
 * Covers one commercial and one SPEComp workload by default (the
 * paper's two workload families exercise different value/sharing
 * behaviour), each under the full feature set — compression, link
 * compression, prefetching, adaptive throttling — with periodic
 * invariant audits and per-fill round-trip verification enabled.
 *
 * A second leg checks the sharded event kernel: the same run with
 * config.lanes = 4 and 8 must hash identically to the single-threaded
 * baseline (the CMPSIM_LANES invariance — see DESIGN.md Section 12).
 *
 * A third leg checks the parallel experiment runner: the same
 * workloads batched through runPoints() with 1 worker and again with
 * 4 must produce byte-identical metric summaries (the CMPSIM_JOBS
 * invariance every bench table now depends on).
 *
 * A fourth leg checks checkpoint/restore (DESIGN.md Section 13): a
 * run with periodic CMPSIM_CKPT autosaves must hash identically to
 * the plain baseline (saving is a pure observer), and a fresh system
 * resumed from the last mid-run snapshot with CMPSIM_RESTORE must
 * finish with that same hash — at lanes 1 and at lanes 4, proving
 * snapshots are portable across kernel shard counts.
 *
 * A fifth leg checks the statistical sampling engine (DESIGN.md
 * Section 14): a sampled run must reproduce across lane counts
 * (1 vs 4), across runner worker counts (jobs 1 vs 4 on the published
 * summaries), and across a mid-plan checkpoint/restore.
 *
 *   determinism_check [workload ...]      # default: zeus apsi
 *
 * Exit status 0 when every workload reproduces, 1 otherwise.
 */

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "src/common/fingerprint.h"
#include "src/common/sim_error.h"
#include "src/core_api/cmp_system.h"
#include "src/core_api/parallel_runner.h"
#include "src/obs/trace.h"
#include "src/sample/sampling_controller.h"
#include "src/workload/workload_params.h"

namespace {

using cmpsim::fnv1a;

/**
 * One full warmup + measured run; returns the stats fingerprint.
 * @p lanes selects the event-kernel shard count (0 = leave the
 * config's default, i.e. whatever CMPSIM_LANES says).
 */
std::uint64_t
runOnce(const std::string &workload, unsigned lanes = 0)
{
    using namespace cmpsim;
    // Full feature set so every subsystem participates in the hash.
    SystemConfig cfg = makeConfig(/*cores=*/4, /*scale=*/4,
                                  /*cache_compression=*/true,
                                  /*link_compression=*/true,
                                  /*prefetching=*/true,
                                  /*adaptive=*/true);
    cfg.seed = 12345;
    cfg.audit_interval = 10000;
    cfg.audit_fill_roundtrip = true;
    if (lanes != 0)
        cfg.lanes = lanes;

    CmpSystem sys(cfg, benchmarkParams(workload));
    sys.warmup(20000);
    sys.run(10000);

    std::ostringstream out;
    sys.stats().dump(out);
    out << "cycles " << sys.cycles() << "\n";
    out << "instructions " << sys.instructions() << "\n";
    out << "audit_passes " << sys.audits().passesRun() << "\n";
    return fnv1a(out.str());
}

/**
 * Sharded-kernel leg: the same run with the event kernel split over
 * 4 and 8 lanes must fingerprint identically to @p baseline (the
 * single-threaded kernel's hash from the main leg). Returns 0 on
 * success, 1 on any divergence.
 */
int
checkLanes(const std::vector<std::string> &workloads,
           const std::vector<std::uint64_t> &baseline)
{
    int status = 0;
    for (std::size_t i = 0; i < workloads.size(); ++i) {
        const std::uint64_t h4 = runOnce(workloads[i], 4);
        const std::uint64_t h8 = runOnce(workloads[i], 8);
        if (h4 == baseline[i] && h8 == baseline[i]) {
            std::printf("determinism_check: %-8s ok    %016llx "
                        "(lanes 1 == 4 == 8)\n",
                        workloads[i].c_str(),
                        static_cast<unsigned long long>(baseline[i]));
        } else {
            std::printf("determinism_check: %-8s FAIL  %016llx vs "
                        "%016llx (lanes 4) vs %016llx (lanes 8)\n",
                        workloads[i].c_str(),
                        static_cast<unsigned long long>(baseline[i]),
                        static_cast<unsigned long long>(h4),
                        static_cast<unsigned long long>(h8));
            status = 1;
        }
    }
    return status;
}

/**
 * Parallel-runner leg: batch every workload through runPoints() with
 * 1 worker and with 4; each point's summary must fingerprint
 * identically. Returns 0 on success, 1 on any divergence.
 */
int
checkParallelRunner(const std::vector<std::string> &workloads)
{
    using namespace cmpsim;
    std::vector<PointSpec> specs;
    for (const std::string &w : workloads) {
        PointSpec spec;
        spec.config = makeConfig(/*cores=*/4, /*scale=*/4,
                                 /*cache_compression=*/true,
                                 /*link_compression=*/true,
                                 /*prefetching=*/true,
                                 /*adaptive=*/true);
        spec.benchmark = w;
        spec.lengths.warmup_per_core = 20000;
        spec.lengths.measure_per_core = 10000;
        spec.seeds = 2;
        specs.push_back(std::move(spec));
    }

    const auto serial = runPoints(specs, /*jobs=*/1);
    const auto parallel = runPoints(specs, /*jobs=*/4);

    int status = 0;
    for (std::size_t i = 0; i < specs.size(); ++i) {
        const std::uint64_t h1 = fnv1a(summaryBytes(serial[i]));
        const std::uint64_t h4 = fnv1a(summaryBytes(parallel[i]));
        if (h1 == h4) {
            std::printf("determinism_check: %-8s ok    %016llx "
                        "(jobs 1 == jobs 4)\n",
                        specs[i].benchmark.c_str(),
                        static_cast<unsigned long long>(h1));
        } else {
            std::printf("determinism_check: %-8s FAIL  %016llx != "
                        "%016llx (jobs 1 vs jobs 4)\n",
                        specs[i].benchmark.c_str(),
                        static_cast<unsigned long long>(h1),
                        static_cast<unsigned long long>(h4));
            status = 1;
        }
    }
    return status;
}

/**
 * Checkpoint-resume leg: autosave every few thousand cycles while
 * running to completion (hash must equal @p baseline — a save never
 * perturbs simulation), then resume a fresh system from the last
 * mid-run snapshot at lanes 1 and lanes 4 (each must finish with the
 * baseline hash). Returns 0 on success, 1 on any divergence.
 */
int
checkCheckpointResume(const std::vector<std::string> &workloads,
                      const std::vector<std::uint64_t> &baseline)
{
    int status = 0;
    const std::string path = "determinism_check_ckpt.bin";
    const std::string spec = path + ":every3000";

    // Checkpointing refuses to combine with interval sampling (the
    // sampler's already-emitted rows are not replayable), and CI's
    // traced gate arms CMPSIM_SAMPLE_CYCLES for the other legs — so
    // this leg runs with sampling off, restoring the knob afterwards.
    const char *sample_env = getenv("CMPSIM_SAMPLE_CYCLES");
    const std::string saved_sample = sample_env != nullptr ? sample_env : "";
    if (sample_env != nullptr)
        unsetenv("CMPSIM_SAMPLE_CYCLES");
    // Same for the CPI-stack layer (CI's armed gate sets
    // CMPSIM_CPISTACK for the other legs): genealogy records are not
    // checkpointed, so this leg runs unarmed. The hashes still prove
    // what the gate needs — stats() never depends on the layer.
    const char *cpi_env = getenv("CMPSIM_CPISTACK");
    const std::string saved_cpi = cpi_env != nullptr ? cpi_env : "";
    if (cpi_env != nullptr)
        unsetenv("CMPSIM_CPISTACK");

    for (std::size_t i = 0; i < workloads.size(); ++i) {
        std::remove(path.c_str());
        std::remove((path + ".prev").c_str());

        setenv("CMPSIM_CKPT", spec.c_str(), 1);
        const std::uint64_t save = runOnce(workloads[i]);
        unsetenv("CMPSIM_CKPT");

        setenv("CMPSIM_RESTORE", path.c_str(), 1);
        const std::uint64_t resume1 = runOnce(workloads[i]);
        const std::uint64_t resume4 = runOnce(workloads[i], 4);
        unsetenv("CMPSIM_RESTORE");

        if (save == baseline[i] && resume1 == baseline[i] &&
            resume4 == baseline[i]) {
            std::printf("determinism_check: %-8s ok    %016llx "
                        "(ckpt save == resume == resume-lanes4)\n",
                        workloads[i].c_str(),
                        static_cast<unsigned long long>(baseline[i]));
        } else {
            std::printf("determinism_check: %-8s FAIL  baseline "
                        "%016llx vs %016llx (ckpt save) vs %016llx "
                        "(resume) vs %016llx (resume lanes 4)\n",
                        workloads[i].c_str(),
                        static_cast<unsigned long long>(baseline[i]),
                        static_cast<unsigned long long>(save),
                        static_cast<unsigned long long>(resume1),
                        static_cast<unsigned long long>(resume4));
            status = 1;
        }
        std::remove(path.c_str());
        std::remove((path + ".prev").c_str());
    }
    if (sample_env != nullptr)
        setenv("CMPSIM_SAMPLE_CYCLES", saved_sample.c_str(), 1);
    if (cpi_env != nullptr)
        setenv("CMPSIM_CPISTACK", saved_cpi.c_str(), 1);
    return status;
}

/**
 * Statistical-sampling leg (DESIGN.md Section 14): a sampled run must
 * be as reproducible as a full-detail one. Checks, per workload:
 * lanes 1 == 4 on the stats hash of a direct sampled run, jobs 1 == 4
 * on the published summary of a sampled batch, and a fresh system
 * resumed from a mid-plan autosave finishing with the straight-run
 * hash. Returns 0 on success, 1 on any divergence.
 */
int
checkSampledRuns(const std::vector<std::string> &workloads)
{
    using namespace cmpsim;
    const char *kPlan = "12000:4000:4:warm4000";

    // The CPI-stack layer refuses to combine with statistical
    // sampling (validate()), and checkpoints refuse interval
    // time-series sampling — run this leg with both knobs unarmed,
    // restoring them afterwards (same dance as the checkpoint leg).
    const char *cpi_env = getenv("CMPSIM_CPISTACK");
    const std::string saved_cpi = cpi_env != nullptr ? cpi_env : "";
    if (cpi_env != nullptr)
        unsetenv("CMPSIM_CPISTACK");
    const char *sample_env = getenv("CMPSIM_SAMPLE_CYCLES");
    const std::string saved_sample =
        sample_env != nullptr ? sample_env : "";
    if (sample_env != nullptr)
        unsetenv("CMPSIM_SAMPLE_CYCLES");

    // Direct sampled run at a given lane count -> stats hash.
    const auto sampledOnce = [&](const std::string &workload,
                                 unsigned lanes) {
        SystemConfig cfg = makeConfig(/*cores=*/4, /*scale=*/4,
                                      /*cache_compression=*/true,
                                      /*link_compression=*/true,
                                      /*prefetching=*/true,
                                      /*adaptive=*/true);
        cfg.seed = 12345;
        cfg.audit_interval = 10000;
        cfg.sampling = SamplingPlan::parse(kPlan);
        if (lanes != 0)
            cfg.lanes = lanes;
        CmpSystem sys(cfg, benchmarkParams(workload));
        sys.warmup(20000);
        SamplingController(sys).run();
        std::ostringstream out;
        sys.stats().dump(out);
        out << "cycles " << sys.cycles() << "\n";
        out << "instructions " << sys.instructions() << "\n";
        return fnv1a(out.str());
    };

    int status = 0;
    const std::string path = "determinism_check_sampled_ckpt.bin";
    for (const std::string &w : workloads) {
        const std::uint64_t h1 = sampledOnce(w, 1);
        const std::uint64_t h4 = sampledOnce(w, 4);

        // Mid-plan checkpoint: autosave while running to completion,
        // then resume a fresh system from the last (mid-plan)
        // snapshot; both must land on the lanes-1 hash.
        std::remove(path.c_str());
        std::remove((path + ".prev").c_str());
        setenv("CMPSIM_CKPT", (path + ":every3000").c_str(), 1);
        const std::uint64_t save = sampledOnce(w, 1);
        unsetenv("CMPSIM_CKPT");
        setenv("CMPSIM_RESTORE", path.c_str(), 1);
        const std::uint64_t resume = sampledOnce(w, 1);
        unsetenv("CMPSIM_RESTORE");
        std::remove(path.c_str());
        std::remove((path + ".prev").c_str());

        if (h1 == h4 && save == h1 && resume == h1) {
            std::printf("determinism_check: %-8s ok    %016llx "
                        "(sampled: lanes 1 == 4, midplan resume)\n",
                        w.c_str(),
                        static_cast<unsigned long long>(h1));
        } else {
            std::printf("determinism_check: %-8s FAIL  sampled "
                        "%016llx vs %016llx (lanes 4) vs %016llx "
                        "(ckpt save) vs %016llx (midplan resume)\n",
                        w.c_str(),
                        static_cast<unsigned long long>(h1),
                        static_cast<unsigned long long>(h4),
                        static_cast<unsigned long long>(save),
                        static_cast<unsigned long long>(resume));
            status = 1;
        }
    }

    // Sampled batch through the parallel runner: jobs 1 vs 4.
    std::vector<PointSpec> specs;
    for (const std::string &w : workloads) {
        PointSpec spec;
        spec.config = makeConfig(/*cores=*/4, /*scale=*/4,
                                 /*cache_compression=*/true,
                                 /*link_compression=*/true,
                                 /*prefetching=*/true,
                                 /*adaptive=*/true);
        spec.config.sampling = SamplingPlan::parse(kPlan);
        spec.benchmark = w;
        spec.lengths.warmup_per_core = 20000;
        spec.lengths.measure_per_core = 0; // sampled runs ignore it
        spec.seeds = 2;
        specs.push_back(std::move(spec));
    }
    const auto serial = runPoints(specs, /*jobs=*/1);
    const auto parallel = runPoints(specs, /*jobs=*/4);
    for (std::size_t i = 0; i < specs.size(); ++i) {
        const std::uint64_t j1 = fnv1a(summaryBytes(serial[i]));
        const std::uint64_t j4 = fnv1a(summaryBytes(parallel[i]));
        if (j1 == j4) {
            std::printf("determinism_check: %-8s ok    %016llx "
                        "(sampled: jobs 1 == jobs 4)\n",
                        specs[i].benchmark.c_str(),
                        static_cast<unsigned long long>(j1));
        } else {
            std::printf("determinism_check: %-8s FAIL  sampled "
                        "%016llx != %016llx (jobs 1 vs jobs 4)\n",
                        specs[i].benchmark.c_str(),
                        static_cast<unsigned long long>(j1),
                        static_cast<unsigned long long>(j4));
            status = 1;
        }
    }

    if (cpi_env != nullptr)
        setenv("CMPSIM_CPISTACK", saved_cpi.c_str(), 1);
    if (sample_env != nullptr)
        setenv("CMPSIM_SAMPLE_CYCLES", saved_sample.c_str(), 1);
    return status;
}

int
run(const std::vector<std::string> &workloads)
{
    int status = 0;
    std::vector<std::uint64_t> baseline;
    for (const std::string &w : workloads) {
        const std::uint64_t first = runOnce(w);
        const std::uint64_t second = runOnce(w);
        baseline.push_back(first);
        if (first == second) {
            std::printf("determinism_check: %-8s ok    %016llx\n",
                        w.c_str(),
                        static_cast<unsigned long long>(first));
        } else {
            std::printf("determinism_check: %-8s FAIL  %016llx != "
                        "%016llx\n",
                        w.c_str(),
                        static_cast<unsigned long long>(first),
                        static_cast<unsigned long long>(second));
            status = 1;
        }
    }
    status |= checkLanes(workloads, baseline);
    status |= checkParallelRunner(workloads);
    status |= checkCheckpointResume(workloads, baseline);
    status |= checkSampledRuns(workloads);
    return status;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> workloads;
    for (int i = 1; i < argc; ++i)
        workloads.push_back(argv[i]);
    if (workloads.empty())
        workloads = {"zeus", "apsi"}; // one commercial, one SPEComp

    try {
        // CI's traced gate sets CMPSIM_TRACE (and CMPSIM_SAMPLE_CYCLES):
        // the hashes must reproduce with the observability probes live,
        // proving they only read simulator state.
        cmpsim::TraceSession trace_session;
        return run(workloads);
    } catch (const cmpsim::SimError &e) {
        std::fprintf(stderr, "determinism_check: error: %s\n", e.what());
        return 1;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "determinism_check: error: [internal] %s\n",
                     e.what());
        return 1;
    }
}
