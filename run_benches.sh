#!/bin/bash
# Runs every bench binary, teeing combined output to bench_output.txt.
#
#   ./run_benches.sh [-j N] [output.txt]
#
# -j N runs up to N bench binaries concurrently (default 1). Each
# binary writes to its own temp file; sections are concatenated in
# name order afterwards, so the combined output is identical at any
# -j. A machine-readable BENCH_results.json (bench name, wall-clock
# seconds, peak RSS, exit status) lands next to the text output so
# later runs have a perf trajectory to compare against.
#
# The binaries themselves also parallelize internally across
# CMPSIM_JOBS simulation workers; with -j > 1 you may want to set
# CMPSIM_JOBS to a smaller value to avoid oversubscription.
cd "$(dirname "$0")" || exit 1

jobs=1
while getopts "j:" opt; do
  case "$opt" in
    j) jobs="$OPTARG" ;;
    *) echo "usage: $0 [-j N] [output.txt]" >&2; exit 2 ;;
  esac
done
shift $((OPTIND - 1))
case "$jobs" in
  ''|*[!0-9]*) echo "run_benches.sh: bad -j value: $jobs" >&2; exit 2 ;;
esac
[ "$jobs" -ge 1 ] || jobs=1

out=${1:-bench_output.txt}
json=$(dirname "$out")/BENCH_results.json
tmpdir=$(mktemp -d) || exit 1
trap 'rm -rf "$tmpdir"' EXIT
suite_t0=$(date +%s.%N)

# Exit status of a finished bench. A missing or corrupt .status file
# (the bench was OOM-killed or SIGKILLed before reporting) must read
# as a failure — defaulting it to 0 would let one dead bench vanish
# behind the later successes and report the suite "ok".
bench_status() {
  local s
  s=$(cat "$tmpdir/$1.status" 2>/dev/null)
  case "$s" in
    ''|*[!0-9]*) s=127 ;;
  esac
  echo "$s"
}

# Peak resident set of a finished bench in KiB. Missing or corrupt
# .rss (no /usr/bin/time on this host, or the bench was killed before
# time could report) reads as 0 — "unknown", never a parse error in
# the JSON.
bench_rss() {
  local r
  r=$(cat "$tmpdir/$1.rss" 2>/dev/null)
  case "$r" in
    ''|*[!0-9]*) r=0 ;;
  esac
  echo "$r"
}

# Launch one bench binary, recording output, wall seconds, peak RSS
# and status.
run_one() {
  local bin=$1 name
  name=$(basename "$bin")
  local t0 t1
  t0=$(date +%s.%N)
  if [ -x /usr/bin/time ]; then
    # GNU time's %M is ru_maxrss in KiB; -o keeps it out of the
    # bench's own output so the concatenated text stays identical.
    /usr/bin/time -o "$tmpdir/$name.rss" -f %M \
      "$bin" > "$tmpdir/$name.out" 2>&1
  elif command -v python3 > /dev/null 2>&1; then
    # No GNU time on this host: read the same ru_maxrss (KiB on
    # Linux) from getrusage(RUSAGE_CHILDREN) in a python wrapper.
    # Signal deaths map to the shell's 128+N convention like time(1).
    python3 -c '
import resource, subprocess, sys
status = subprocess.call([sys.argv[1]])
with open(sys.argv[2], "w") as f:
    f.write(str(resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss))
sys.exit(status if status >= 0 else 128 - status)' \
      "$bin" "$tmpdir/$name.rss" > "$tmpdir/$name.out" 2>&1
  else
    "$bin" > "$tmpdir/$name.out" 2>&1
  fi
  echo $? > "$tmpdir/$name.status"
  t1=$(date +%s.%N)
  awk -v a="$t0" -v b="$t1" 'BEGIN { printf "%.2f", b - a }' \
    > "$tmpdir/$name.secs"
}

benches=()
for b in build/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  benches+=("$b")
done

running=0
for b in "${benches[@]}"; do
  if [ "$running" -ge "$jobs" ]; then
    wait -n
    running=$((running - 1))
  fi
  run_one "$b" &
  running=$((running + 1))
done
wait

# Concatenate sections in launch (name) order: byte-identical to a
# serial run apart from the timings in the JSON.
: > "$out"
overall=0
for b in "${benches[@]}"; do
  name=$(basename "$b")
  echo "##### $b #####" | tee -a "$out"
  tee -a "$out" < "$tmpdir/$name.out"
  echo | tee -a "$out"
  status=$(bench_status "$name")
  [ "$status" -eq 0 ] || overall=1
done

# Overall wall clock covers launch through concatenation — the number
# a CI budget actually cares about, not the sum of per-bench times
# (which double-counts under -j > 1).
suite_t1=$(date +%s.%N)
overall_secs=$(awk -v a="$suite_t0" -v b="$suite_t1" \
  'BEGIN { printf "%.2f", b - a }')

# Provenance: which tree produced these numbers, and on how many
# hardware cores. A perf trajectory without either is guesswork —
# "-dirty" marks a working tree with uncommitted changes.
git_sha=$(git rev-parse HEAD 2>/dev/null || echo unknown)
if [ "$git_sha" != unknown ] && ! git diff --quiet HEAD 2>/dev/null; then
  git_sha="$git_sha-dirty"
fi
host_nproc=$(nproc 2>/dev/null || echo 0)
case "$host_nproc" in
  ''|*[!0-9]*) host_nproc=0 ;;
esac

{
  echo "{"
  echo "  \"git_sha\": \"$git_sha\","
  echo "  \"nproc\": $host_nproc,"
  echo "  \"jobs\": $jobs,"
  # Wall-clock numbers are only comparable across runs that used the
  # same kernel sharding and simulation-worker counts, so record both
  # knobs next to the timings ("" = unset, i.e. the defaults).
  echo "  \"cmpsim_lanes\": \"${CMPSIM_LANES:-}\","
  echo "  \"cmpsim_jobs\": \"${CMPSIM_JOBS:-}\","
  # Checkpoint knobs change what a run does at startup (restore) and
  # add periodic autosave I/O to its wall clock, so a perf trajectory
  # needs them recorded too.
  echo "  \"cmpsim_ckpt\": \"${CMPSIM_CKPT:-}\","
  echo "  \"cmpsim_restore\": \"${CMPSIM_RESTORE:-}\","
  echo "  \"overall_wall_seconds\": $overall_secs,"
  if [ "$overall" -eq 0 ]; then
    echo "  \"status\": \"ok\","
  else
    echo "  \"status\": \"failed\","
  fi
  echo "  \"benches\": ["
  sep=""
  for b in "${benches[@]}"; do
    name=$(basename "$b")
    status=$(bench_status "$name")
    if [ "$status" -eq 0 ]; then word=ok; else word=failed; fi
    printf '%s    { "name": "%s", "status": "%s", "wall_seconds": %s, "max_rss_kb": %s, "exit_status": %s }' \
      "$sep" "$name" "$word" "$(cat "$tmpdir/$name.secs")" \
      "$(bench_rss "$name")" "$status"
    sep=",
"
  done
  echo
  echo "  ]"
  echo "}"
} > "$json"

if [ "$overall" -ne 0 ]; then
  echo "run_benches.sh: some benches failed (see $json)" | tee -a "$out" >&2
fi
echo "ALL_BENCHES_DONE" | tee -a "$out"
exit $overall
