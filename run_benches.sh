#!/bin/bash
# Runs every bench binary, teeing combined output to bench_output.txt.
cd "$(dirname "$0")"
out=${1:-bench_output.txt}
: > "$out"
for b in build/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  echo "##### $b #####" | tee -a "$out"
  "$b" 2>&1 | tee -a "$out"
  echo | tee -a "$out"
done
echo "ALL_BENCHES_DONE" | tee -a "$out"
